// Package datagen generates the benchmark databases: a synthetic NREF
// protein database matching the paper's schema and relative cardinalities,
// and TPC-H databases in uniform and Zipf-skewed (z=1) variants, per the
// Chaudhuri-Narasayya skewed TPC-D generator the paper uses.
//
// All generation is deterministic given a seed and a scale factor.
// Distributions are scale-invariant where it matters: domain sizes grow
// with the row counts so that value-frequency spectra (which the workload
// generator's constant selection and the HAVING COUNT(*) < k subqueries
// depend on) look the same at every scale.
package datagen

import (
	"math"
	"math/rand"

	"repro/internal/val"
)

// Zipf samples ranks 1..N with probability proportional to 1/rank^S using
// inverse-CDF lookup; unlike math/rand's Zipf it supports s <= 1 and is
// deterministic across Go versions for a fixed source.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s (s=1 is the
// paper's skew factor).
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next samples a rank in [0, N).
func (z *Zipf) Next(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SkewedPick combines a Zipf head with a uniform long tail: a fraction
// tailFrac of samples are drawn uniformly from [head, head+tail), the
// rest from Zipf over [0, head). This guarantees both heavy hitters and
// rare (frequency 1..3) values at every scale — the frequency spectrum
// the benchmark's query families exploit.
type SkewedPick struct {
	head     *Zipf
	tail     int
	tailFrac float64
}

// NewSkewedPick builds a picker over head+tail distinct values.
func NewSkewedPick(head, tail int, s, tailFrac float64) *SkewedPick {
	if head < 1 {
		head = 1
	}
	if tail < 0 {
		tail = 0
	}
	return &SkewedPick{head: NewZipf(head, s), tail: tail, tailFrac: tailFrac}
}

// N returns the number of distinct values the picker can produce.
func (p *SkewedPick) N() int { return p.head.N() + p.tail }

// Next samples a value in [0, N()).
func (p *SkewedPick) Next(rng *rand.Rand) int {
	if p.tail > 0 && rng.Float64() < p.tailFrac {
		return p.head.N() + rng.Intn(p.tail)
	}
	return p.head.Next(rng)
}

// Loader receives generated rows, one table at a time. engine.Engine
// satisfies it; tests may use lighter sinks.
type Loader interface {
	Load(table string, rows []val.Row) error
}
