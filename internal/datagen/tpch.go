package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/val"
)

// TPCHOptions controls TPC-H generation.
type TPCHOptions struct {
	// ScaleFactor multiplies the paper's 10 GB (TPC-H SF 10) row counts.
	ScaleFactor float64
	Seed        int64
	// Skew enables the Zipfian value distribution (z = ZipfS, the paper
	// uses 1) following the Chaudhuri-Narasayya skewed TPC-D generator;
	// when false all values are uniform.
	Skew  bool
	ZipfS float64
}

// picker abstracts uniform versus skewed value selection.
type picker struct {
	n    int
	zipf *SkewedPick
}

func newPicker(n int, opts TPCHOptions) *picker {
	if n < 1 {
		n = 1
	}
	p := &picker{n: n}
	if opts.Skew {
		s := opts.ZipfS
		if s == 0 {
			s = 1
		}
		head := n * 3 / 4
		if head < 1 {
			head = 1
		}
		p.zipf = NewSkewedPick(head, n-head, s, 0.25)
	}
	return p
}

func (p *picker) next(rng *rand.Rand) int {
	if p.zipf != nil {
		return p.zipf.Next(rng)
	}
	return rng.Intn(p.n)
}

// TPC-H value pools (spec-derived, abbreviated).
var (
	tpchSegments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	tpchPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"}
	tpchShipmodes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	tpchInstructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	tpchContainers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP CASE", "JUMBO PKG"}
	tpchTypes      = []string{"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM BURNISHED NICKEL",
		"LARGE BRUSHED BRASS", "ECONOMY POLISHED STEEL", "PROMO ANODIZED STEEL"}
	tpchNations = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
		"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO",
		"MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA",
		"UNITED KINGDOM", "UNITED STATES"}
	tpchRegions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
)

// dateRange: TPC-H dates span 1992-01-01 .. 1998-12-31, encoded as day
// ordinals.
const dateLo, dateHi = 0, 2556

// GenerateTPCH populates the engine (which must use the catalog.TPCH
// schema) with a TPC-H instance.
func GenerateTPCH(e Loader, opts TPCHOptions) error {
	if opts.ScaleFactor <= 0 {
		opts.ScaleFactor = 0.001
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	full := catalog.TPCHFullScaleRows()
	sf := opts.ScaleFactor

	nSupplier := scaled(full["supplier"], sf)
	nPart := scaled(full["part"], sf)
	nPartsupp := scaled(full["partsupp"], sf)
	nCustomer := scaled(full["customer"], sf)
	nOrders := scaled(full["orders"], sf)
	nLineitem := scaled(full["lineitem"], sf)

	pickPart := newPicker(nPart, opts)
	pickCust := newPicker(nCustomer, opts)
	pickOrder := newPicker(nOrders, opts)
	pickDate := newPicker(dateHi-dateLo, opts)
	pickQty := newPicker(50, opts)
	pickSize := newPicker(50, opts)
	pickNation := newPicker(len(tpchNations), opts)

	comment := func(n int) val.Value { return val.String(randSeq(rng, n)) }
	money := func() val.Value { return val.Float(float64(900+rng.Intn(950000)) / 100) }

	// region / nation: fixed-size per spec.
	rows := make([]val.Row, 0, len(tpchRegions))
	for i, name := range tpchRegions {
		rows = append(rows, val.Row{val.Int(int64(i)), val.String(name), comment(20)})
	}
	if err := e.Load("region", rows); err != nil {
		return err
	}
	rows = rows[:0]
	for i, name := range tpchNations {
		rows = append(rows, val.Row{val.Int(int64(i)), val.String(name), val.Int(int64(i % 5)), comment(20)})
	}
	if err := e.Load("nation", rows); err != nil {
		return err
	}

	// supplier.
	rows = rows[:0]
	for i := 0; i < nSupplier; i++ {
		rows = append(rows, val.Row{
			val.Int(int64(i)),
			val.String(fmt.Sprintf("Supplier#%09d", i)),
			comment(18),
			val.Int(int64(pickNation.next(rng))),
			val.String(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+i%25, rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))),
			money(),
			comment(24),
		})
	}
	if err := e.Load("supplier", rows); err != nil {
		return err
	}

	// part.
	rows = rows[:0]
	for i := 0; i < nPart; i++ {
		rows = append(rows, val.Row{
			val.Int(int64(i)),
			val.String(fmt.Sprintf("part %s %d", tpchTypes[i%len(tpchTypes)], i)),
			val.String(fmt.Sprintf("Manufacturer#%d", 1+pickSize.next(rng)%5)),
			val.String(fmt.Sprintf("Brand#%d%d", 1+pickSize.next(rng)%5, 1+pickSize.next(rng)%5)),
			val.String(tpchTypes[pickSize.next(rng)%len(tpchTypes)]),
			val.Int(int64(1 + pickSize.next(rng))),
			val.String(tpchContainers[pickSize.next(rng)%len(tpchContainers)]),
			money(),
			comment(10),
		})
	}
	if err := e.Load("part", rows); err != nil {
		return err
	}

	// partsupp: 4 suppliers per part (spec), with skew applied to the
	// availqty/supplycost value columns only (keys stay dense).
	rows = rows[:0]
	for i := 0; i < nPartsupp; i++ {
		rows = append(rows, val.Row{
			val.Int(int64(i / 4 % nPart)),
			val.Int(int64((i/4 + (i%4)*(nSupplier/4+1)) % nSupplier)),
			val.Int(int64(1 + pickQty.next(rng)*200)),
			money(),
			comment(30),
		})
	}
	if err := e.Load("partsupp", rows); err != nil {
		return err
	}

	// customer.
	rows = rows[:0]
	for i := 0; i < nCustomer; i++ {
		rows = append(rows, val.Row{
			val.Int(int64(i)),
			val.String(fmt.Sprintf("Customer#%09d", i)),
			comment(18),
			val.Int(int64(pickNation.next(rng))),
			val.String(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+i%25, rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))),
			money(),
			val.String(tpchSegments[pickSize.next(rng)%len(tpchSegments)]),
			comment(28),
		})
	}
	if err := e.Load("customer", rows); err != nil {
		return err
	}

	// orders.
	rows = rows[:0]
	for i := 0; i < nOrders; i++ {
		rows = append(rows, val.Row{
			val.Int(int64(i)),
			val.Int(int64(pickCust.next(rng))),
			val.String([]string{"O", "F", "P"}[pickSize.next(rng)%3]),
			money(),
			val.Int(int64(dateLo + pickDate.next(rng))),
			val.String(tpchPriorities[pickSize.next(rng)%len(tpchPriorities)]),
			val.String(fmt.Sprintf("Clerk#%09d", rng.Intn(nSupplier*10+1))),
			val.Int(0),
			comment(20),
		})
	}
	if err := e.Load("orders", rows); err != nil {
		return err
	}

	// lineitem: ~4 lines per order.
	rows = rows[:0]
	for i := 0; i < nLineitem; i++ {
		ok := pickOrder.next(rng)
		part := pickPart.next(rng)
		// Pick one of the part's four partsupp suppliers so the
		// (l_partkey, l_suppkey) -> partsupp foreign key actually joins.
		supp := (part + rng.Intn(4)*(nSupplier/4+1)) % nSupplier
		ship := dateLo + pickDate.next(rng)
		rows = append(rows, val.Row{
			val.Int(int64(ok)),
			val.Int(int64(part)),
			val.Int(int64(supp)),
			val.Int(int64(i % 7)),
			val.Int(int64(1 + pickQty.next(rng))),
			money(),
			val.Float(float64(rng.Intn(11)) / 100),
			val.Float(float64(rng.Intn(9)) / 100),
			val.String([]string{"R", "A", "N"}[pickSize.next(rng)%3]),
			val.String([]string{"O", "F"}[pickSize.next(rng)%2]),
			val.Int(int64(ship)),
			val.Int(int64(minI(ship+30, dateHi))),
			val.Int(int64(minI(ship+60, dateHi))),
			val.String(tpchInstructs[pickSize.next(rng)%len(tpchInstructs)]),
			val.String(tpchShipmodes[pickSize.next(rng)%len(tpchShipmodes)]),
			comment(12),
		})
	}
	return e.Load("lineitem", rows)
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
