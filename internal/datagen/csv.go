package datagen

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/val"
)

// WriteCSV streams a heap's rows as CSV with a header row of column names.
func WriteCSV(w io.Writer, h *storage.Heap) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(h.Table.Columns))
	for i, c := range h.Table.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	var writeErr error
	h.Scan(nil, func(_ storage.RowID, r val.Row) bool {
		rec := make([]string, len(r))
		for i, v := range r {
			rec[i] = v.Raw()
		}
		if err := cw.Write(rec); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads CSV rows (with a header, which is validated against the
// table's column names) into the loader.
func ReadCSV(r io.Reader, t *catalog.Table, into Loader) error {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("datagen: reading CSV header: %w", err)
	}
	if len(header) != len(t.Columns) {
		return fmt.Errorf("datagen: CSV has %d columns, table %s has %d",
			len(header), t.Name, len(t.Columns))
	}
	var rows []val.Row
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		row := make(val.Row, len(rec))
		for i, f := range rec {
			v, err := parseValue(t.Columns[i].Type, f)
			if err != nil {
				return fmt.Errorf("datagen: column %s: %w", t.Columns[i].Name, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
		if len(rows) == 10000 {
			if err := into.Load(t.Name, rows); err != nil {
				return err
			}
			rows = rows[:0]
		}
	}
	if len(rows) > 0 {
		return into.Load(t.Name, rows)
	}
	return nil
}

func parseValue(ty catalog.Type, field string) (val.Value, error) {
	if field == "NULL" {
		return val.Null(), nil
	}
	switch ty {
	case catalog.TypeInt:
		i, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return val.Value{}, err
		}
		return val.Int(i), nil
	case catalog.TypeFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return val.Value{}, err
		}
		return val.Float(f), nil
	default:
		return val.String(field), nil
	}
}
