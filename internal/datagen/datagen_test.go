package datagen

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/val"
)

// memSink collects generated rows per table.
type memSink struct {
	schema *catalog.Schema
	heaps  map[string]*storage.Heap
}

func newSink(s *catalog.Schema) *memSink {
	m := &memSink{schema: s, heaps: make(map[string]*storage.Heap)}
	for _, t := range s.Tables() {
		m.heaps[strings.ToLower(t.Name)] = storage.NewHeap(t)
	}
	return m
}

func (m *memSink) Load(table string, rows []val.Row) error {
	h := m.heaps[strings.ToLower(table)]
	for _, r := range rows {
		if _, err := h.Insert(nil, r); err != nil {
			return err
		}
	}
	return nil
}

func (m *memSink) Heap(table string) *storage.Heap { return m.heaps[strings.ToLower(table)] }

func TestZipfDistribution(t *testing.T) {
	z := NewZipf(100, 1)
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, 100)
	const n = 200_000
	for i := 0; i < n; i++ {
		counts[z.Next(rng)]++
	}
	// Empirical frequency of rank r must be ∝ 1/(r+1) within tolerance.
	h := 0.0
	for i := 1; i <= 100; i++ {
		h += 1 / float64(i)
	}
	for _, r := range []int{0, 1, 9, 49, 99} {
		want := float64(n) / (float64(r+1) * h)
		got := float64(counts[r])
		if got < want*0.8-20 || got > want*1.2+20 {
			t.Errorf("rank %d: got %d samples, want ~%.0f", r, counts[r], want)
		}
	}
}

func TestZipfHigherSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z1 := NewZipf(1000, 0.5)
	z2 := NewZipf(1000, 1.5)
	top1, top2 := 0, 0
	for i := 0; i < 50_000; i++ {
		if z1.Next(rng) == 0 {
			top1++
		}
		if z2.Next(rng) == 0 {
			top2++
		}
	}
	if top2 <= top1 {
		t.Errorf("higher exponent must concentrate more: s=0.5 %d vs s=1.5 %d", top1, top2)
	}
}

func TestSkewedPickCoversTail(t *testing.T) {
	p := NewSkewedPick(100, 300, 1, 0.4)
	if p.N() != 400 {
		t.Fatalf("N = %d", p.N())
	}
	rng := rand.New(rand.NewSource(3))
	tail := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		if p.Next(rng) >= 100 {
			tail++
		}
	}
	frac := float64(tail) / n
	if math.Abs(frac-0.4) > 0.03 {
		t.Errorf("tail fraction = %.3f, want ~0.4", frac)
	}
}

func TestGenerateNREFShape(t *testing.T) {
	s := catalog.NREF()
	sink := newSink(s)
	if err := GenerateNREF(sink, NREFOptions{ScaleFactor: 0.0001, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	full := catalog.NREFFullScaleRows()
	for _, tab := range s.Tables() {
		got := sink.Heap(tab.Name).NumRows()
		want := int64(float64(full[tab.Name]) * 0.0001)
		if want < 1 {
			want = 1
		}
		if got != want {
			t.Errorf("%s rows = %d, want %d", tab.Name, got, want)
		}
	}
	// The paper's Example 1 constant must exist in source.p_name.
	found := false
	sink.Heap("source").Scan(nil, func(_ storage.RowID, r val.Row) bool {
		if r[4].Str == "Simian Virus 40" {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("'Simian Virus 40' missing from source.p_name")
	}
}

// TestNREFFrequencySpectrum verifies the property the workload generator's
// constant selection relies on: join-column frequencies span orders of
// magnitude down to 1.
func TestNREFFrequencySpectrum(t *testing.T) {
	s := catalog.NREF()
	sink := newSink(s)
	if err := GenerateNREF(sink, NREFOptions{ScaleFactor: 0.0005, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	tab := s.Table("taxonomy")
	col := tab.ColumnIndex("taxon_id")
	counts := make(map[int64]int64)
	sink.Heap("taxonomy").Scan(nil, func(_ storage.RowID, r val.Row) bool {
		counts[r[col].I]++
		return true
	})
	var min, max int64 = 1 << 60, 0
	for _, n := range counts {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min > 3 {
		t.Errorf("no rare taxon values (min freq %d)", min)
	}
	if max < min*20 {
		t.Errorf("frequency spectrum too flat: min %d max %d", min, max)
	}
}

func TestGenerateTPCHShape(t *testing.T) {
	s := catalog.TPCH()
	sink := newSink(s)
	if err := GenerateTPCH(sink, TPCHOptions{ScaleFactor: 0.0001, Seed: 5, Skew: true, ZipfS: 1}); err != nil {
		t.Fatal(err)
	}
	if got := sink.Heap("region").NumRows(); got != 5 {
		t.Errorf("region rows = %d (fixed-size per spec)", got)
	}
	if got := sink.Heap("nation").NumRows(); got != 25 {
		t.Errorf("nation rows = %d", got)
	}
	// Lineitem joins partsupp through its composite FK.
	pairs := make(map[[2]int64]bool)
	sink.Heap("partsupp").Scan(nil, func(_ storage.RowID, r val.Row) bool {
		pairs[[2]int64{r[0].I, r[1].I}] = true
		return true
	})
	misses := 0
	sink.Heap("lineitem").Scan(nil, func(_ storage.RowID, r val.Row) bool {
		if !pairs[[2]int64{r[1].I, r[2].I}] {
			misses++
		}
		return true
	})
	if misses > 0 {
		t.Errorf("%d lineitem rows reference nonexistent partsupp pairs", misses)
	}
}

func TestSkewedVsUniformTPCH(t *testing.T) {
	s := catalog.TPCH()
	freqTop := func(skew bool) int {
		sink := newSink(s)
		if err := GenerateTPCH(sink, TPCHOptions{ScaleFactor: 0.0002, Seed: 5, Skew: skew, ZipfS: 1}); err != nil {
			t.Fatal(err)
		}
		counts := make(map[int64]int)
		col := s.Table("lineitem").ColumnIndex("l_partkey")
		top := 0
		sink.Heap("lineitem").Scan(nil, func(_ storage.RowID, r val.Row) bool {
			counts[r[col].I]++
			if counts[r[col].I] > top {
				top = counts[r[col].I]
			}
			return true
		})
		return top
	}
	if skewTop, uniTop := freqTop(true), freqTop(false); skewTop < uniTop*3 {
		t.Errorf("skewed top frequency %d should far exceed uniform %d", skewTop, uniTop)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := catalog.NREF()
	sink := newSink(s)
	if err := GenerateNREF(sink, NREFOptions{ScaleFactor: 0.0001, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sink.Heap("protein")); err != nil {
		t.Fatal(err)
	}
	sink2 := newSink(s)
	if err := ReadCSV(&buf, s.Table("protein"), sink2); err != nil {
		t.Fatal(err)
	}
	h1, h2 := sink.Heap("protein"), sink2.Heap("protein")
	if h1.NumRows() != h2.NumRows() {
		t.Fatalf("row count %d vs %d", h1.NumRows(), h2.NumRows())
	}
	for i := int64(0); i < h1.NumRows(); i++ {
		if val.CompareRows(h1.Get(storage.RowID(i)), h2.Get(storage.RowID(i))) != 0 {
			t.Fatalf("row %d differs after round trip", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := catalog.NREF()
	sink := newSink(s)
	if err := ReadCSV(strings.NewReader("a,b\n1,2\n"), s.Table("protein"), sink); err == nil {
		t.Error("column-count mismatch must fail")
	}
	bad := "nref_id,p_name,last_updated,sequence,length\nNF1,p,notanint,SEQ,3\n"
	if err := ReadCSV(strings.NewReader(bad), s.Table("protein"), sink); err == nil {
		t.Error("type mismatch must fail")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	s := catalog.NREF()
	a, b := newSink(s), newSink(s)
	if err := GenerateNREF(a, NREFOptions{ScaleFactor: 0.0001, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if err := GenerateNREF(b, NREFOptions{ScaleFactor: 0.0001, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	ha, hb := a.Heap("taxonomy"), b.Heap("taxonomy")
	if ha.NumRows() != hb.NumRows() {
		t.Fatal("row counts differ")
	}
	for i := int64(0); i < ha.NumRows(); i += 97 {
		if val.CompareRows(ha.Get(storage.RowID(i)), hb.Get(storage.RowID(i))) != 0 {
			t.Fatalf("row %d differs across identical seeds", i)
		}
	}
}
