package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/val"
)

// NREFOptions controls synthetic NREF generation.
type NREFOptions struct {
	// ScaleFactor multiplies the paper's full-scale row counts
	// (Protein 1.1M, Source 3M, Taxonomy 15.1M, Organism 1.2M,
	// Neighboring_seq 78.7M, Identical_seq 0.5M).
	ScaleFactor float64
	Seed        int64
}

// scaled returns max(1, round(full * sf)).
func scaled(full int64, sf float64) int {
	n := int(float64(full) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// aminoAcids are the 20 standard one-letter codes.
const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

// proteinNamePool generates the shared protein/species/organism name
// domain. "Simian Virus 40" (the paper's Example 1 constant) is always
// rank 40 — frequent enough to appear, rare enough to be selective.
func proteinNamePool(n int) []string {
	if n < 64 {
		n = 64
	}
	pool := make([]string, n)
	families := []string{"kinase", "transferase", "polymerase", "reductase",
		"hydrolase", "synthase", "receptor", "transporter", "virus protein",
		"capsid protein", "membrane protein", "binding factor"}
	for i := range pool {
		pool[i] = fmt.Sprintf("%s %d", families[i%len(families)], i)
	}
	pool[40] = "Simian Virus 40"
	return pool
}

// lineagePool generates taxonomic lineage strings.
func lineagePool(n int) []string {
	if n < 16 {
		n = 16
	}
	kingdoms := []string{"Bacteria", "Archaea", "Eukaryota", "Viruses"}
	pool := make([]string, n)
	for i := range pool {
		pool[i] = fmt.Sprintf("%s; clade%d; family%d", kingdoms[i%4], i/17, i)
	}
	return pool
}

func nrefID(i int) val.Value { return val.String(fmt.Sprintf("NF%07d", i)) }

func randSeq(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = aminoAcids[rng.Intn(len(aminoAcids))]
	}
	return string(b)
}

// GenerateNREF populates the engine (which must use the catalog.NREF
// schema) with a synthetic NREF instance.
func GenerateNREF(e Loader, opts NREFOptions) error {
	if opts.ScaleFactor <= 0 {
		opts.ScaleFactor = 0.001
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	full := catalog.NREFFullScaleRows()
	sf := opts.ScaleFactor

	nProtein := scaled(full["protein"], sf)
	nSource := scaled(full["source"], sf)
	nTaxonomy := scaled(full["taxonomy"], sf)
	nOrganism := scaled(full["organism"], sf)
	nNeighbor := scaled(full["neighboring_seq"], sf)
	nIdentical := scaled(full["identical_seq"], sf)

	// Domain pools, scaled so frequency spectra are scale-invariant. The
	// pools are large relative to the referencing tables and carry big
	// uniform tails, so every domain offers constants whose frequencies
	// span orders of magnitude down to 1 — the spectrum the families'
	// k1/k2/k3 constant selection (paper §3.2.2) requires.
	names := proteinNamePool(nSource / 2)
	lineages := lineagePool(nTaxonomy / 12)
	nTaxa := nTaxonomy / 6
	if nTaxa < 32 {
		nTaxa = 32
	}

	pickProtein := NewSkewedPick(nProtein/2, nProtein/2, 1.0, 0.4)
	pickTaxon := NewSkewedPick(nTaxa/4, nTaxa*3/4, 1.0, 0.4)
	pickName := NewSkewedPick(len(names)/4, len(names)*3/4, 1.0, 0.6)
	pickLineage := NewSkewedPick(len(lineages)/4, len(lineages)*3/4, 1.0, 0.5)
	sources := []string{"PIR-PSD", "SwissProt", "TrEMBL", "RefSeq", "GenPept", "PDB"}

	// Protein: one row per nref_id.
	rows := make([]val.Row, 0, nProtein)
	for i := 0; i < nProtein; i++ {
		length := 40 + rng.Intn(900)
		rows = append(rows, val.Row{
			nrefID(i),
			val.String(names[pickName.Next(rng)]),
			val.Int(int64(10000 + rng.Intn(3000))),
			val.String(randSeq(rng, 24+rng.Intn(40))), // representative fragment
			val.Int(int64(length)),
		})
	}
	if err := e.Load("protein", rows); err != nil {
		return err
	}

	// Source: ~3 database citations per protein, skewed.
	rows = rows[:0]
	for i := 0; i < nSource; i++ {
		p := pickProtein.Next(rng)
		rows = append(rows, val.Row{
			nrefID(p),
			val.Int(int64(i)),
			val.Int(int64(pickTaxon.Next(rng))),
			val.String(fmt.Sprintf("AC%06d", rng.Intn(nSource))),
			val.String(names[pickName.Next(rng)]),
			val.String(sources[rng.Intn(len(sources))]),
		})
	}
	if err := e.Load("source", rows); err != nil {
		return err
	}

	// Taxonomy: many taxa per protein; lineage correlates with taxon.
	rows = rows[:0]
	for i := 0; i < nTaxonomy; i++ {
		p := pickProtein.Next(rng)
		taxon := pickTaxon.Next(rng)
		lineage := lineages[(taxon+pickLineage.Next(rng))%len(lineages)]
		rows = append(rows, val.Row{
			nrefID(p),
			val.Int(int64(taxon)),
			val.String(lineage),
			val.String(names[taxon%len(names)]),
			val.String(names[pickName.Next(rng)]),
		})
	}
	if err := e.Load("taxonomy", rows); err != nil {
		return err
	}

	// Organism: roughly one per protein.
	rows = rows[:0]
	for i := 0; i < nOrganism; i++ {
		p := pickProtein.Next(rng)
		rows = append(rows, val.Row{
			nrefID(p),
			val.Int(int64(i)),
			val.Int(int64(pickTaxon.Next(rng))),
			val.String(names[pickName.Next(rng)]),
		})
	}
	if err := e.Load("organism", rows); err != nil {
		return err
	}

	// Neighboring_seq: the widest and largest relation.
	rows = rows[:0]
	for i := 0; i < nNeighbor; i++ {
		p1 := pickProtein.Next(rng)
		p2 := pickProtein.Next(rng)
		l2 := 40 + rng.Intn(900)
		overlap := rng.Intn(l2 + 1)
		rows = append(rows, val.Row{
			nrefID(p1),
			val.Int(int64(i)),
			nrefID(p2),
			val.Int(int64(pickTaxon.Next(rng))),
			val.Int(int64(l2)),
			val.Float(float64(rng.Intn(10000)) / 10),
			val.Int(int64(overlap)),
			val.Int(int64(rng.Intn(l2 + 1))),
			val.Int(int64(rng.Intn(l2 + 1))),
			val.Int(int64(rng.Intn(l2 + 1))),
			val.Int(int64(rng.Intn(l2 + 1))),
		})
	}
	if err := e.Load("neighboring_seq", rows); err != nil {
		return err
	}

	// Identical_seq.
	rows = rows[:0]
	for i := 0; i < nIdentical; i++ {
		rows = append(rows, val.Row{
			nrefID(pickProtein.Next(rng)),
			val.Int(int64(i)),
			nrefID(pickProtein.Next(rng)),
			val.Int(int64(pickTaxon.Next(rng))),
		})
	}
	return e.Load("identical_seq", rows)
}
