package gateway

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the gateway-wide observability record: global counters
// plus one TenantSnapshot per tenant, in config order.
type Snapshot struct {
	Ready    bool  `json:"ready"`
	Draining bool  `json:"draining"`
	Inflight int64 `json:"inflight"`

	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`

	Retunes    int64            `json:"retunes"`
	RetuneErrs int64            `json:"retune_errors,omitempty"`
	AuditKept  int64            `json:"audit_records"`
	AuditLost  int64            `json:"audit_overflow,omitempty"`
	Sharding   *ShardSnapshot   `json:"sharding,omitempty"`
	Tenants    []TenantSnapshot `json:"tenants"`
}

// ShardSnapshot reports the shard cluster and autoscaler state (absent
// when the gateway serves unsharded).
type ShardSnapshot struct {
	Shards    int    `json:"shards"`
	Pool      int    `json:"pool"`
	Mode      string `json:"mode"`
	Queries   int64  `json:"queries"`
	Fallbacks int64  `json:"fallbacks"`
	Timeouts  int64  `json:"timeouts,omitempty"`
	Reshards  int64  `json:"reshards"`

	Autoscale        bool             `json:"autoscale,omitempty"`
	AutoscaleDryRun  bool             `json:"autoscale_dry_run,omitempty"`
	AutoscaleWindows int64            `json:"autoscale_windows,omitempty"`
	AutoscaleActions map[string]int64 `json:"autoscale_actions,omitempty"`
}

// Stats assembles the live snapshot.
func (g *Gateway) Stats() Snapshot {
	s := Snapshot{
		Ready:    g.Ready(),
		Inflight: g.inflight.Load(),
		Accepted: g.accepted.Load(),
		Rejected: g.rejected.Load(),
	}
	g.acceptMu.RLock()
	s.Draining = g.draining
	g.acceptMu.RUnlock()
	if tn := g.tunerP.Load(); tn != nil {
		s.Retunes = tn.applied.Load()
		s.RetuneErrs = tn.failed.Load()
	}
	g.audit.mu.Lock()
	s.AuditKept = int64(len(g.audit.records))
	s.AuditLost = g.audit.dropped
	g.audit.mu.Unlock()
	if b := g.backend.Load(); b != nil && b.Cluster != nil {
		cl := b.Cluster
		st := cl.Stats()
		sh := &ShardSnapshot{
			Shards:    cl.Shards(),
			Pool:      cl.Pool(),
			Mode:      string(cl.Spec().Mode),
			Queries:   st.Queries,
			Fallbacks: st.Fallbacks,
			Timeouts:  st.Timeouts,
			Reshards:  st.Reshards,
		}
		if as := g.autoP.Load(); as != nil {
			sh.Autoscale = true
			sh.AutoscaleDryRun = as.upd.DryRun
			sh.AutoscaleWindows = as.windows.Load()
			audit := as.upd.Audit()
			if len(audit) > 0 {
				sh.AutoscaleActions = make(map[string]int64, 4)
				for _, rec := range audit {
					sh.AutoscaleActions[rec.Action]++
				}
			}
		}
		s.Sharding = sh
	}
	s.Tenants = make([]TenantSnapshot, 0, len(g.tenantOrder))
	for _, name := range g.tenantOrder {
		s.Tenants = append(s.Tenants, g.tenants[name].snapshot())
	}
	return s
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// conflint:ignore best-effort response write; the client owns the socket
	enc.Encode(g.Stats())
}

// handleMetrics renders the Prometheus text exposition. Tenants iterate
// in config order and reason keys are sorted, so scrapes are stable.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s := g.Stats()
	var b strings.Builder
	gauge := func(name string, v float64) {
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		b.WriteByte('\n')
	}
	b.WriteString("# HELP gateway_ready 1 once the catalog is loaded and the gateway accepts queries.\n# TYPE gateway_ready gauge\n")
	gauge("gateway_ready", boolGauge(s.Ready))
	b.WriteString("# HELP gateway_inflight Queries executing on the engine right now.\n# TYPE gateway_inflight gauge\n")
	gauge("gateway_inflight", float64(s.Inflight))
	b.WriteString("# HELP gateway_accepted_total Queries admitted across all tenants.\n# TYPE gateway_accepted_total counter\n")
	gauge("gateway_accepted_total", float64(s.Accepted))
	b.WriteString("# HELP gateway_rejected_total Requests rejected across all tenants and stages.\n# TYPE gateway_rejected_total counter\n")
	gauge("gateway_rejected_total", float64(s.Rejected))
	b.WriteString("# HELP gateway_retunes_total Goal-triggered configuration transitions applied.\n# TYPE gateway_retunes_total counter\n")
	gauge("gateway_retunes_total", float64(s.Retunes))
	if s.Sharding != nil {
		b.WriteString("# HELP gateway_shards Current shard count.\n# TYPE gateway_shards gauge\n")
		gauge("gateway_shards", float64(s.Sharding.Shards))
		b.WriteString("# HELP gateway_shard_pool Current partition worker-pool width.\n# TYPE gateway_shard_pool gauge\n")
		gauge("gateway_shard_pool", float64(s.Sharding.Pool))
		b.WriteString("# HELP gateway_reshards_total Live topology changes applied.\n# TYPE gateway_reshards_total counter\n")
		gauge("gateway_reshards_total", float64(s.Sharding.Reshards))
		b.WriteString("# HELP gateway_autoscale_actions_total Autoscaler audit records by action.\n# TYPE gateway_autoscale_actions_total counter\n")
		actions := make([]string, 0, len(s.Sharding.AutoscaleActions))
		for a := range s.Sharding.AutoscaleActions {
			actions = append(actions, a)
		}
		sort.Strings(actions)
		for _, a := range actions {
			gauge("gateway_autoscale_actions_total{action=\""+a+"\"}", float64(s.Sharding.AutoscaleActions[a]))
		}
	}

	b.WriteString("# HELP gateway_tenant_admitted_total Queries admitted per tenant.\n# TYPE gateway_tenant_admitted_total counter\n")
	for _, t := range s.Tenants {
		gauge("gateway_tenant_admitted_total{tenant=\""+t.Tenant+"\"}", float64(t.Admitted))
	}
	b.WriteString("# HELP gateway_tenant_completed_total Queries completed per tenant.\n# TYPE gateway_tenant_completed_total counter\n")
	for _, t := range s.Tenants {
		gauge("gateway_tenant_completed_total{tenant=\""+t.Tenant+"\"}", float64(t.Completed))
	}
	b.WriteString("# HELP gateway_tenant_rejected_total Rejections per tenant by reason.\n# TYPE gateway_tenant_rejected_total counter\n")
	for _, t := range s.Tenants {
		reasons := make([]string, 0, len(t.Rejected))
		for reason := range t.Rejected {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			gauge("gateway_tenant_rejected_total{tenant=\""+t.Tenant+"\",reason=\""+reason+"\"}", float64(t.Rejected[reason]))
		}
	}
	b.WriteString("# HELP gateway_tenant_goal_level Cumulative goal satisfaction level in [0,1].\n# TYPE gateway_tenant_goal_level gauge\n")
	for _, t := range s.Tenants {
		gauge("gateway_tenant_goal_level{tenant=\""+t.Tenant+"\"}", t.GoalLevel)
	}
	b.WriteString("# HELP gateway_tenant_window_goal_level Sliding-window goal satisfaction level in [0,1].\n# TYPE gateway_tenant_window_goal_level gauge\n")
	for _, t := range s.Tenants {
		gauge("gateway_tenant_window_goal_level{tenant=\""+t.Tenant+"\"}", t.WindowGoalLevel)
	}
	b.WriteString("# HELP gateway_tenant_window_p50_seconds Sliding-window median simulated latency (-1 when among timeouts).\n# TYPE gateway_tenant_window_p50_seconds gauge\n")
	for _, t := range s.Tenants {
		gauge("gateway_tenant_window_p50_seconds{tenant=\""+t.Tenant+"\"}", t.WindowP50)
	}
	b.WriteString("# HELP gateway_tenant_window_p95_seconds Sliding-window p95 simulated latency (-1 when among timeouts).\n# TYPE gateway_tenant_window_p95_seconds gauge\n")
	for _, t := range s.Tenants {
		gauge("gateway_tenant_window_p95_seconds{tenant=\""+t.Tenant+"\"}", t.WindowP95)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// conflint:ignore best-effort response write; the client owns the socket
	w.Write([]byte(b.String()))
}

// GoalReport renders the deterministic per-tenant goal ledger: for a
// seeded schedule it is byte-identical across runs and parallelism (the
// numbers derive from order-insensitive cumulative counters). Reasons
// and tenants iterate in sorted/config order.
//
// conflint:sink per-tenant goal ledger
func (g *Gateway) GoalReport() string {
	var b strings.Builder
	b.WriteString("tenant  admitted  completed  timeouts  rejected  goal_level\n")
	for _, name := range g.tenantOrder {
		t := g.tenants[name].snapshot()
		var nrej int64
		reasons := make([]string, 0, len(t.Rejected))
		for reason := range t.Rejected {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		for _, reason := range reasons {
			nrej += t.Rejected[reason]
		}
		b.WriteString(t.Tenant)
		b.WriteString("  ")
		b.WriteString(strconv.FormatInt(t.Admitted, 10))
		b.WriteString("  ")
		b.WriteString(strconv.FormatInt(t.Completed, 10))
		b.WriteString("  ")
		b.WriteString(strconv.FormatInt(t.Timeouts, 10))
		b.WriteString("  ")
		b.WriteString(strconv.FormatInt(nrej, 10))
		b.WriteString("  ")
		b.WriteString(strconv.FormatFloat(t.GoalLevel, 'f', 4, 64))
		b.WriteByte('\n')
		for _, reason := range reasons {
			b.WriteString("  ")
			b.WriteString(t.Tenant)
			b.WriteString(".rejected.")
			b.WriteString(reason)
			b.WriteString(" = ")
			b.WriteString(strconv.FormatInt(t.Rejected[reason], 10))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func boolGauge(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// finiteOrNeg clamps the CFC's +Inf timeout quantiles to -1 for JSON and
// metrics surfaces.
func finiteOrNeg(x float64) float64 {
	if x > 1e17 {
		return -1
	}
	return x
}
