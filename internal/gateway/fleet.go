package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// FleetTenant is one tenant identity the fleet drives sessions as.
type FleetTenant struct {
	Name     string
	APIKey   string
	Families []string
}

// FleetOptions configures a seeded session fleet against a gateway URL.
type FleetOptions struct {
	BaseURL string
	Client  *http.Client

	Tenants []FleetTenant

	// Sessions is the total session count, assigned to tenants
	// round-robin; each session issues QueriesPerSession queries
	// sampled (seeded) from the tenant's pools.
	Sessions          int
	QueriesPerSession int

	// Workers bounds concurrently active sessions.
	Workers int

	Seed int64

	// Sync executes the seeded schedule as an indexed fan-out: worker w
	// of N takes schedule positions w, w+N, w+2N, ... so the executed
	// request set — and with per-tenant caps at or above Workers, every
	// admission decision — is identical at any worker count. Async mode
	// instead races whole sessions, the production posture.
	Sync bool
}

func (o *FleetOptions) setDefaults() error {
	if o.BaseURL == "" {
		return fmt.Errorf("fleet: no base URL")
	}
	if len(o.Tenants) == 0 {
		return fmt.Errorf("fleet: no tenants")
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Sessions == 0 {
		o.Sessions = 100
	}
	if o.QueriesPerSession == 0 {
		o.QueriesPerSession = 1
	}
	if o.Workers == 0 {
		o.Workers = 8
	}
	return nil
}

// fleetReq is one scheduled request: seq is its schedule position, which
// the gateway threads into the audit log.
type fleetReq struct {
	seq    int64
	tenant int
	family string
	sql    string
}

// Fleet is a seeded load generator: the schedule is fixed at build time,
// so two fleets with the same options issue the identical request set.
type Fleet struct {
	opts     FleetOptions
	schedule []fleetReq // flat, seq order; session i owns seqs [i*qps, (i+1)*qps)
}

// NewFleet fetches each tenant's query pools from the gateway (which
// must be ready) and builds the seeded schedule.
func NewFleet(opts FleetOptions) (*Fleet, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	pools := make([]map[string][]string, len(opts.Tenants))
	for ti, t := range opts.Tenants {
		pools[ti] = make(map[string][]string, len(t.Families))
		for _, fam := range t.Families {
			qs, err := fetchPool(opts.Client, opts.BaseURL, t.APIKey, fam)
			if err != nil {
				return nil, fmt.Errorf("fleet: tenant %s pool %s: %w", t.Name, fam, err)
			}
			if len(qs) == 0 {
				return nil, fmt.Errorf("fleet: tenant %s pool %s is empty", t.Name, fam)
			}
			pools[ti][fam] = qs
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	schedule := make([]fleetReq, 0, opts.Sessions*opts.QueriesPerSession)
	seq := int64(0)
	for s := 0; s < opts.Sessions; s++ {
		ti := s % len(opts.Tenants)
		fams := opts.Tenants[ti].Families
		for k := 0; k < opts.QueriesPerSession; k++ {
			fam := fams[rng.Intn(len(fams))]
			pool := pools[ti][fam]
			schedule = append(schedule, fleetReq{
				seq:    seq,
				tenant: ti,
				family: fam,
				sql:    pool[rng.Intn(len(pool))],
			})
			seq++
		}
	}
	return &Fleet{opts: opts, schedule: schedule}, nil
}

func fetchPool(c *http.Client, base, key, family string) ([]string, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/pool?family="+family, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-API-Key", key)
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var out struct {
		Queries []string `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Queries, nil
}

// FleetReport aggregates one fleet run. Latencies are client-observed
// wall clock (the operator's view); simulated per-query costs live in
// the gateway's own ledgers.
type FleetReport struct {
	Sessions int `json:"sessions"`
	Requests int `json:"requests"`
	Workers  int `json:"workers"`

	Accepted int64            `json:"accepted"`
	Rejected int64            `json:"rejected"`
	Errors   int64            `json:"transport_errors,omitempty"`
	ByReason map[string]int64 `json:"rejected_by_reason,omitempty"`

	RejectionRate float64 `json:"rejection_rate"`
	WallSeconds   float64 `json:"wall_seconds"`
	Throughput    float64 `json:"requests_per_sec"`
	P50Millis     float64 `json:"p50_ms"`
	P99Millis     float64 `json:"p99_ms"`
}

// Run executes the schedule and aggregates the outcome.
func (f *Fleet) Run() (FleetReport, error) {
	rep := FleetReport{
		Sessions: f.opts.Sessions,
		Requests: len(f.schedule),
		Workers:  f.opts.Workers,
		ByReason: make(map[string]int64),
	}
	var (
		mu        sync.Mutex
		latencies = make([]float64, 0, len(f.schedule)) // conflint:guardedby mu
		wg        sync.WaitGroup
	)
	record := func(lat float64, status int, reason string, transportErr bool) {
		mu.Lock()
		defer mu.Unlock()
		if transportErr {
			rep.Errors++
			return
		}
		latencies = append(latencies, lat)
		if status == http.StatusOK {
			rep.Accepted++
			return
		}
		rep.Rejected++
		if reason == "" {
			reason = fmt.Sprintf("http-%d", status)
		}
		rep.ByReason[reason]++
	}

	// conflint:ignore wall-clock throughput measurement for the operator's bench artifact; never enters audit or goal ledgers
	start := time.Now()
	if f.opts.Sync {
		for w := 0; w < f.opts.Workers; w++ {
			wg.Add(1)
			// conflint:worker lifecycle=none indexed fan-out over the fixed schedule; joined below
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(f.schedule); i += f.opts.Workers {
					f.issue(f.schedule[i], record)
				}
			}(w)
		}
	} else {
		sessions := make(chan int)
		for w := 0; w < f.opts.Workers; w++ {
			wg.Add(1)
			// conflint:worker lifecycle=sessions session runner; drains the sessions channel, joined below
			go func() {
				defer wg.Done()
				for s := range sessions {
					lo := s * f.opts.QueriesPerSession
					for i := lo; i < lo+f.opts.QueriesPerSession; i++ {
						f.issue(f.schedule[i], record)
					}
				}
			}()
		}
		for s := 0; s < f.opts.Sessions; s++ {
			sessions <- s
		}
		close(sessions)
	}
	wg.Wait()
	// conflint:ignore wall-clock throughput measurement for the operator's bench artifact; never enters audit or goal ledgers
	rep.WallSeconds = time.Since(start).Seconds()

	if rep.Requests > 0 {
		rep.RejectionRate = float64(rep.Rejected) / float64(rep.Requests)
	}
	if rep.WallSeconds > 0 {
		rep.Throughput = float64(rep.Requests) / rep.WallSeconds
	}
	sort.Float64s(latencies)
	if n := len(latencies); n > 0 {
		rep.P50Millis = latencies[(n-1)/2]
		rep.P99Millis = latencies[(n*99+99)/100-1]
	}
	if len(rep.ByReason) == 0 {
		rep.ByReason = nil
	}
	return rep, nil
}

// issue posts one scheduled request and records its outcome.
func (f *Fleet) issue(r fleetReq, record func(lat float64, status int, reason string, transportErr bool)) {
	t := f.opts.Tenants[r.tenant]
	body, err := json.Marshal(queryRequest{Seq: r.seq, Family: r.family, SQL: r.sql})
	if err != nil {
		record(0, 0, "", true)
		return
	}
	req, err := http.NewRequest(http.MethodPost, f.opts.BaseURL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		record(0, 0, "", true)
		return
	}
	req.Header.Set("X-API-Key", t.APIKey)
	req.Header.Set("Content-Type", "application/json")
	// conflint:ignore wall-clock client latency for the operator's bench artifact; never enters audit or goal ledgers
	begin := time.Now()
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		record(0, 0, "", true)
		return
	}
	// conflint:ignore wall-clock client latency for the operator's bench artifact; never enters audit or goal ledgers
	lat := time.Since(begin).Seconds() * 1000
	reason := ""
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil {
			reason = e.Error
		}
	}
	// conflint:ignore best-effort drain so the connection is reusable
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	record(lat, resp.StatusCode, reason, false)
}
