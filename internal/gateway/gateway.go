// Package gateway serves SQL to many concurrent tenants over one
// engine/autopilot stack — the multi-client front the paper's
// recommender benchmarks assume but never build. A request flows
//
//	parse → authenticate → authorize → admit → execute → respond
//
// with a structured audit record for every accepted or rejected query.
// Authentication is a static API-key → tenant map; authorization checks
// the tenant's granted query families and relation allowlist and
// enforces read-only SQL; admission is a bounded per-tenant queue
// (backpressure via 429 + Retry-After) drained by per-tenant pumps under
// a global in-flight cap. Each tenant carries its own goal curve G(x)
// and sliding-window observer, so a violating tenant nudges the tuner
// into a recommender run and an incremental engine transition while
// traffic keeps flowing.
//
// All query timing is simulated seconds from the engine's cost meters;
// wall-clock never enters an audit record or goal ledger, which is what
// makes seeded runs reproducible byte for byte at any parallelism.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/conf"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/recommender"
	"repro/internal/shard"
	"repro/internal/sql"
)

// Backend is the loaded serving substrate: the engine plus the sampled
// per-family query pools clients draw from and the storage budget the
// tuner recommends under.
type Backend struct {
	Engine *engine.Engine
	// Pools maps family name → sampled SQL texts (served by /v1/pool so
	// load generators need no local catalog).
	Pools map[string][]string
	// Budget is the tuner's storage budget in bytes.
	Budget int64
	// Cluster, when non-nil, serves queries partition-parallel over the
	// engine. load builds one from the config when sharding or
	// autoscaling is requested and the provided backend lacks it.
	Cluster *shard.Cluster
}

// Options assembles a Gateway.
type Options struct {
	Config Config
	// Backend, when non-nil, serves immediately (tests share one loaded
	// lab across suites). Otherwise BackendFunc — or the default
	// BuildBackend — loads in the background and /readyz flips only
	// after it returns.
	Backend     *Backend
	BackendFunc func(Config) (*Backend, error)
	// AuditSink, when non-nil, receives every audit record as a JSON
	// line in arrival order.
	AuditSink io.Writer
	// AuditCap bounds the in-memory audit ring (default 65536).
	AuditCap int
}

// Gateway is one multi-tenant HTTP front over one engine.
type Gateway struct {
	cfg         Config
	db          string
	tenants     map[string]*tenantState
	byKey       map[string]*tenantState
	tenantOrder []string
	mux         *http.ServeMux
	audit       *auditor

	// gate is the global in-flight cap: pumps hold a slot while a query
	// executes, bounding engine load across all tenants.
	gate     chan struct{}
	inflight atomic.Int64
	accepted atomic.Int64
	rejected atomic.Int64

	backend atomic.Pointer[Backend]
	tunerP  atomic.Pointer[tuner]
	autoP   atomic.Pointer[autoscaler]
	readyCh chan struct{}
	loadMu  sync.Mutex
	loadErr error // conflint:guardedby loadMu

	// acceptMu serializes admission against shutdown: handlers take
	// drain tickets under the read lock, Shutdown flips draining under
	// the write lock, so no accepted query can slip past the drain wait.
	acceptMu sync.RWMutex
	draining bool // conflint:guardedby acceptMu
	drainWG  sync.WaitGroup
	pumpWG   sync.WaitGroup

	shutdown1 sync.Once
	// shutdownErr is written only inside shutdown1.Do and read after it
	// returns; the Once's happens-before edge orders the two.
	shutdownErr error
}

// recConfigOf maps the serving profile to its recommender behaviors.
func recConfigOf(system string) recommender.Config {
	switch system {
	case "A":
		return recommender.SystemA()
	case "C":
		return recommender.SystemC()
	default:
		return recommender.SystemB()
	}
}

// BuildBackend loads the engine and family pools through a bench.Lab —
// the same substrate the batch benchmark and autopilot use.
func BuildBackend(cfg Config) (*Backend, error) {
	db, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	lab := bench.NewLab(cfg.Scale, cfg.Seed)
	lab.WorkloadSize = cfg.Pool
	pools := make(map[string][]string)
	for _, t := range cfg.Tenants {
		for _, f := range t.Families {
			if _, ok := pools[f]; ok {
				continue
			}
			fam := lab.Workload(cfg.System, f)
			sqls := make([]string, len(fam.Queries))
			for i, q := range fam.Queries {
				sqls[i] = q.SQL
			}
			pools[f] = sqls
		}
	}
	return &Backend{
		Engine: lab.Engine(cfg.System, db),
		Pools:  pools,
		Budget: lab.Budget(cfg.System, db),
	}, nil
}

// New validates the config and starts the background loader; the
// returned gateway serves 503 not-ready until the catalog is loaded.
func New(opts Options) (*Gateway, error) {
	cfg := opts.Config
	cfg.setDefaults()
	db, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		cfg:     cfg,
		db:      db,
		tenants: make(map[string]*tenantState, len(cfg.Tenants)),
		byKey:   make(map[string]*tenantState, len(cfg.Tenants)),
		gate:    make(chan struct{}, cfg.GlobalInflight),
		audit:   newAuditor(opts.AuditCap, opts.AuditSink),
		readyCh: make(chan struct{}),
	}
	g.tenantOrder = make([]string, 0, len(cfg.Tenants))
	for i := range cfg.Tenants {
		t := newTenantState(cfg.Tenants[i])
		g.tenants[t.cfg.Name] = t
		g.byKey[t.cfg.APIKey] = t
		g.tenantOrder = append(g.tenantOrder, t.cfg.Name)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", g.handleQuery)
	mux.HandleFunc("/v1/pool", g.handlePool)
	mux.HandleFunc("/v1/stats", g.handleStats)
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/readyz", g.handleReadyz)
	mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux = mux

	build := opts.BackendFunc
	if opts.Backend != nil {
		b := opts.Backend
		build = func(Config) (*Backend, error) { return b, nil }
	}
	if build == nil {
		build = BuildBackend
	}
	// conflint:worker lifecycle=none background catalog loader; terminates after one build and closes readyCh
	go g.load(build)
	return g, nil
}

// load builds the backend and — unless shutdown already began — starts
// the pumps and tuner and flips readiness.
func (g *Gateway) load(build func(Config) (*Backend, error)) {
	defer close(g.readyCh)
	b, err := build(g.cfg)
	if err == nil && g.cfg.sharded() && b.Cluster == nil {
		n := g.cfg.Shards
		if n < 1 {
			n = 1 // autoscale without explicit shards starts unsharded
		}
		var cl *shard.Cluster
		cl, err = shard.New(b.Engine, shard.Spec{Shards: n, Mode: shard.Mode(g.cfg.ShardMode)}, g.cfg.ShardPool)
		if err == nil {
			// Copy-on-write: the provided backend may be shared across
			// gateways (tests share one loaded lab), so never mutate it.
			nb := *b
			nb.Cluster = cl
			b = &nb
		}
	}
	if err != nil {
		g.loadMu.Lock()
		g.loadErr = err
		g.loadMu.Unlock()
		return
	}
	g.acceptMu.Lock()
	defer g.acceptMu.Unlock()
	if g.draining {
		return
	}
	g.backend.Store(b)
	if g.cfg.Tuning {
		tn := newTuner(g, recConfigOf(g.cfg.System), b.Engine.NewWhatIf(), b.Budget)
		g.tunerP.Store(tn)
		tn.start()
	}
	if g.cfg.Autoscale && b.Cluster != nil {
		as := newAutoscaler(g, b.Cluster)
		g.autoP.Store(as)
		as.start()
	}
	for _, name := range g.tenantOrder {
		t := g.tenants[name]
		for i := 0; i < t.cfg.MaxConcurrency; i++ {
			g.pumpWG.Add(1)
			// conflint:worker lifecycle=queue per-tenant pump; exits when Shutdown closes the queue, joined via pumpWG
			go g.pump(t)
		}
	}
}

// eng returns the loaded engine (handlers only call it once ready).
func (g *Gateway) eng() *engine.Engine { return g.backend.Load().Engine }

// cluster returns the shard cluster, nil when serving unsharded.
func (g *Gateway) cluster() *shard.Cluster { return g.backend.Load().Cluster }

// run executes one analyzed query on the serving substrate: partition-
// parallel through the shard cluster when sharded, directly on the
// engine otherwise. Results and simulated costs are byte-identical
// either way — the cluster's determinism contract.
func (g *Gateway) run(q *sql.Query, limitSeconds float64) (*exec.Result, engine.Measure, error) {
	if cl := g.cluster(); cl != nil {
		return cl.RunAnalyzed(q, limitSeconds)
	}
	return g.eng().RunAnalyzed(q, limitSeconds)
}

// transition applies a configuration through the cluster when sharded,
// so partitions pick up the base-table structures too.
func (g *Gateway) transition(cfg conf.Configuration) error {
	if cl := g.cluster(); cl != nil {
		_, err := cl.Transition(cfg)
		return err
	}
	_, err := g.eng().Transition(cfg)
	return err
}

// Ready reports whether the catalog is loaded and admission is open.
func (g *Gateway) Ready() bool {
	if g.backend.Load() == nil {
		return false
	}
	g.acceptMu.RLock()
	defer g.acceptMu.RUnlock()
	return !g.draining
}

// WaitReady blocks until the loader finishes (returning its error, if
// any) or the context ends.
func (g *Gateway) WaitReady(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-g.readyCh:
	}
	g.loadMu.Lock()
	defer g.loadMu.Unlock()
	return g.loadErr
}

// ServeHTTP makes the gateway a plain http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Retunes reports goal-triggered transitions applied so far.
func (g *Gateway) Retunes() int64 {
	if tn := g.tunerP.Load(); tn != nil {
		return tn.applied.Load()
	}
	return 0
}

// queryRequest is the /v1/query body.
type queryRequest struct {
	// Seq is the client-assigned sequence number threaded into the audit
	// log (schedule position under a seeded load generator).
	Seq    int64  `json:"seq"`
	Family string `json:"family"`
	SQL    string `json:"sql"`
}

// queryResponse is the /v1/query success body. Rows carries at most the
// tenant's max_rows rendered rows; RowCount is the full result size.
type queryResponse struct {
	Seq        int64      `json:"seq"`
	Tenant     string     `json:"tenant"`
	Family     string     `json:"family"`
	SimSeconds float64    `json:"sim_seconds"`
	TimedOut   bool       `json:"timed_out,omitempty"`
	RowCount   int        `json:"row_count"`
	Cols       []string   `json:"cols,omitempty"`
	Rows       [][]string `json:"rows,omitempty"`
}

// statusOf maps a rejection reason to its HTTP status.
func statusOf(reason string) int {
	switch reason {
	case ReasonDraining, ReasonNotReady:
		return http.StatusServiceUnavailable
	case ReasonOversized:
		return http.StatusRequestEntityTooLarge
	case ReasonBadAPIKey:
		return http.StatusUnauthorized
	case ReasonReadOnly, ReasonCapability:
		return http.StatusForbidden
	case ReasonQueueFull:
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

// reject records and writes one rejection. t may be nil (pre-auth).
func (g *Gateway) reject(w http.ResponseWriter, t *tenantState, seq int64, family, reason string, detail string) {
	status := statusOf(reason)
	tenant := "-"
	if t != nil {
		tenant = t.cfg.Name
		t.noteRejected(reason)
	}
	g.rejected.Add(1)
	g.audit.add(AuditRecord{
		Seq:      seq,
		Tenant:   tenant,
		Family:   family,
		Decision: DecisionReject,
		Reason:   reason,
		Status:   status,
	})
	if reason == ReasonQueueFull {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body := map[string]string{"error": reason}
	if detail != "" {
		body["detail"] = detail
	}
	// conflint:ignore best-effort response write; the client owns the socket
	json.NewEncoder(w).Encode(body)
}

// handleQuery is the request pipeline: authenticate, bound and decode
// the body, check readiness, authorize family and relations, enforce
// read-only, admit, execute, respond.
//
// conflint:hotpath — every client request flows through this handler.
func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	t := g.byKey[r.Header.Get("X-API-Key")]
	if t == nil {
		g.reject(w, nil, -1, "", ReasonBadAPIKey, "")
		return
	}
	if r.Method != http.MethodPost {
		g.reject(w, t, -1, "", ReasonBadRequest, "POST required")
		return
	}
	req := queryRequest{Seq: -1}
	body := http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			g.reject(w, t, -1, "", ReasonOversized, "")
		} else {
			g.reject(w, t, -1, "", ReasonBadRequest, err.Error())
		}
		return
	}
	if g.backend.Load() == nil {
		g.reject(w, t, req.Seq, req.Family, g.notReadyReason(), "")
		return
	}
	if !t.families[req.Family] {
		g.reject(w, t, req.Seq, req.Family, ReasonCapability, fmt.Sprintf("family %q is not granted to tenant %q", req.Family, t.cfg.Name))
		return
	}
	stmt, err := sql.Parse(req.SQL)
	if err != nil {
		g.reject(w, t, req.Seq, req.Family, ReasonMalformedSQL, err.Error())
		return
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		g.reject(w, t, req.Seq, req.Family, ReasonReadOnly, "only SELECT is allowed")
		return
	}
	q, err := sql.Analyze(g.eng().Schema, sel)
	if err != nil {
		g.reject(w, t, req.Seq, req.Family, ReasonMalformedSQL, err.Error())
		return
	}
	if rel := deniedRelation(t, q); rel != "" {
		g.reject(w, t, req.Seq, req.Family, ReasonCapability, fmt.Sprintf("relation %q is not granted to tenant %q", rel, t.cfg.Name))
		return
	}

	j, reason := g.admit(t, req.Seq, req.Family, req.SQL, q)
	if reason != "" {
		g.reject(w, t, req.Seq, req.Family, reason, "")
		return
	}
	g.accepted.Add(1)
	out := <-j.reply
	if out.err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		// conflint:ignore best-effort response write; the client owns the socket
		json.NewEncoder(w).Encode(map[string]string{"error": "execution-error", "detail": out.err.Error()})
		return
	}
	resp := queryResponse{
		Seq:        j.seq,
		Tenant:     t.cfg.Name,
		Family:     j.family,
		SimSeconds: out.m.Seconds,
		TimedOut:   out.m.TimedOut,
	}
	if out.res != nil {
		resp.RowCount = len(out.res.Rows)
		resp.Cols = out.res.Cols
		n := len(out.res.Rows)
		if n > t.cfg.MaxRows {
			n = t.cfg.MaxRows
		}
		resp.Rows = make([][]string, 0, n)
		for i := 0; i < n; i++ {
			row := make([]string, 0, len(out.res.Rows[i]))
			for _, v := range out.res.Rows[i] {
				row = append(row, v.String())
			}
			resp.Rows = append(resp.Rows, row)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	// conflint:ignore best-effort response write; the client owns the socket
	json.NewEncoder(w).Encode(resp)
}

// deniedRelation returns the first relation the query touches outside
// the tenant's allowlist ("" when authorized).
func deniedRelation(t *tenantState, q *sql.Query) string {
	if t.allow == nil {
		return ""
	}
	for _, qt := range q.Tables {
		if !t.allow[strings.ToLower(qt.Table.Name)] {
			return qt.Table.Name
		}
	}
	for _, in := range q.Ins {
		if !t.allow[strings.ToLower(in.SubTable.Name)] {
			return in.SubTable.Name
		}
	}
	return ""
}

// notReadyReason distinguishes "still loading" from "shutting down".
func (g *Gateway) notReadyReason() string {
	g.acceptMu.RLock()
	defer g.acceptMu.RUnlock()
	if g.draining {
		return ReasonDraining
	}
	return ReasonNotReady
}

// handlePool serves a tenant's sampled query pool for one granted
// family, so load generators need no catalog of their own.
func (g *Gateway) handlePool(w http.ResponseWriter, r *http.Request) {
	t := g.byKey[r.Header.Get("X-API-Key")]
	if t == nil {
		g.reject(w, nil, -1, "", ReasonBadAPIKey, "")
		return
	}
	b := g.backend.Load()
	if b == nil {
		g.reject(w, t, -1, "", g.notReadyReason(), "")
		return
	}
	family := r.URL.Query().Get("family")
	if !t.families[family] {
		g.reject(w, t, -1, family, ReasonCapability, fmt.Sprintf("family %q is not granted to tenant %q", family, t.cfg.Name))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// conflint:ignore best-effort response write; the client owns the socket
	json.NewEncoder(w).Encode(map[string]any{"family": family, "queries": b.Pools[family]})
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if g.Ready() {
		// conflint:ignore best-effort response write; the client owns the socket
		io.WriteString(w, "ok\n")
		return
	}
	g.loadMu.Lock()
	loadErr := g.loadErr
	g.loadMu.Unlock()
	w.WriteHeader(http.StatusServiceUnavailable)
	msg := g.notReadyReason()
	if loadErr != nil {
		msg = "load failed: " + loadErr.Error()
	}
	// conflint:ignore best-effort response write; the client owns the socket
	io.WriteString(w, msg+"\n")
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// conflint:ignore best-effort response write; the client owns the socket
	io.WriteString(w, "ok\n")
}

// Shutdown drains and stops: close admission, wait for every accepted
// query to complete (each leaves its audit record before the drain
// ticket returns — the zero-dropped-after-accept contract), stop the
// pumps, then join the tuner so no Transition is abandoned mid-build.
// Only after Shutdown returns should the caller close its listener.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.shutdown1.Do(func() {
		g.acceptMu.Lock()
		g.draining = true
		g.acceptMu.Unlock()

		drained := make(chan struct{})
		// conflint:worker lifecycle=external shutdown drain waiter; bounded by Shutdown's ctx select, signals drained and exits
		go func() {
			g.drainWG.Wait()
			close(drained)
		}()
		select {
		case <-ctx.Done():
			g.shutdownErr = ctx.Err()
			return
		case <-drained:
		}

		for _, name := range g.tenantOrder {
			close(g.tenants[name].queue)
		}
		pumps := make(chan struct{})
		// conflint:worker lifecycle=external shutdown pump waiter; bounded by Shutdown's ctx select, signals pumps and exits
		go func() {
			g.pumpWG.Wait()
			close(pumps)
		}()
		select {
		case <-ctx.Done():
			g.shutdownErr = ctx.Err()
			return
		case <-pumps:
		}

		if tn := g.tunerP.Load(); tn != nil {
			tn.stop()
		}
		if as := g.autoP.Load(); as != nil {
			as.stop()
		}
	})
	return g.shutdownErr
}
