// Shutdown ordering: admission closes, every accepted query completes
// and lands its audit record, pumps and tuner stop — and only then may
// the listener close. The invariant under test: zero accepted queries
// dropped by a drain.
package gateway

import (
	"context"
	"net/http"
	"testing"
	"time"
)

func TestShutdownDrainsAcceptedQueries(t *testing.T) {
	tight := TenantConfig{
		Name: "tight", APIKey: "tight-key", Families: []string{"NREF2J"},
		MaxQueue: 8, MaxConcurrency: 2, Window: 8,
	}
	cfg := testConfig(tight)
	cfg.GlobalInflight = 1
	g, ts := newTestGateway(t, cfg)
	sqlText := poolQuery(t, ts.URL, "tight-key", "NREF2J", 1)

	// Hold the global gate so accepted queries pile up un-executed —
	// the worst case a drain must survive.
	g.gate <- struct{}{}
	const held = 4
	statuses := make(chan int, held)
	for i := 0; i < held; i++ {
		go func(seq int64) {
			status, _, _ := postQuery(t, ts.URL, "tight-key", seq, "NREF2J", sqlText)
			statuses <- status
		}(int64(i))
	}
	waitUntil(t, func() bool { return g.accepted.Load() == held })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- g.Shutdown(ctx)
	}()
	waitUntil(t, func() bool {
		g.acceptMu.RLock()
		defer g.acceptMu.RUnlock()
		return g.draining
	})

	// Draining: new arrivals bounce with 503, audited.
	status, body, _ := postQuery(t, ts.URL, "tight-key", 99, "NREF2J", sqlText)
	if status != http.StatusServiceUnavailable || body["error"] != ReasonDraining {
		t.Fatalf("query during drain: status %d body %v, want 503 %s", status, body, ReasonDraining)
	}

	// Release the engine; the drain must now complete.
	<-g.gate
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i := 0; i < held; i++ {
		if st := <-statuses; st != http.StatusOK {
			t.Errorf("held query got status %d after drain, want 200", st)
		}
	}

	// Zero dropped-after-accept: every accepted query has exactly one
	// completion record on the audit log.
	var accepts int64
	for _, rec := range g.AuditRecords() {
		if rec.Decision != DecisionAccept {
			continue
		}
		accepts++
		if rec.Status != 200 {
			t.Errorf("accepted seq %d finished with status %d", rec.Seq, rec.Status)
		}
	}
	if accepts != held {
		t.Errorf("%d accept records, want %d (accepted %d)", accepts, held, g.accepted.Load())
	}
	s := g.Stats()
	if s.Inflight != 0 {
		t.Errorf("inflight %d after shutdown", s.Inflight)
	}
	if s.Draining != true || s.Ready {
		t.Errorf("post-shutdown state: draining=%v ready=%v", s.Draining, s.Ready)
	}

	// The drain record for the bounced arrival is on the log too.
	rec := lastAudit(t, g, func(r AuditRecord) bool { return r.Reason == ReasonDraining })
	if rec.Seq != 99 || rec.Status != 503 {
		t.Errorf("draining audit %+v", rec)
	}

	// Shutdown is idempotent.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestShutdownBeforeLoadCompletes exercises the loader/drain race: a
// shutdown that begins while the catalog is still loading must win —
// the loader may not start pumps afterwards, and the gateway must never
// report ready.
func TestShutdownBeforeLoadCompletes(t *testing.T) {
	release := make(chan struct{})
	shared := sharedBackend(t)
	g, err := New(Options{
		Config: testConfig(),
		BackendFunc: func(Config) (*Backend, error) {
			<-release
			return shared, nil
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := g.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown during load: %v", err)
	}
	close(release)
	if err := g.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	if g.Ready() {
		t.Error("gateway reports ready after a pre-load shutdown")
	}
	g.pumpWG.Wait() // no pumps may have started; this must not hang
}
