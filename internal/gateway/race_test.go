// Stress: 32 goroutines hammer queries and observability endpoints
// across tenants with tuning enabled — the suite CI runs under -race.
package gateway

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

func TestStress32Goroutines(t *testing.T) {
	cfg := testConfig()
	cfg.Tuning = true
	g, ts := newTestGateway(t, cfg)
	tenants := threeTenants()
	sqls := make(map[string][]string)
	for _, tc := range tenants {
		for _, fam := range tc.Families {
			if _, ok := sqls[fam]; !ok {
				sqls[fam] = []string{
					poolQuery(t, ts.URL, tc.APIKey, fam, 0),
					poolQuery(t, ts.URL, tc.APIKey, fam, 3),
				}
			}
		}
	}

	const goroutines = 32
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*4)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tc := tenants[i%len(tenants)]
			fam := tc.Families[i%len(tc.Families)]
			pool := sqls[fam]
			for k := 0; k < 2; k++ {
				seq := int64(i*2 + k)
				status, body, _ := postQuery(t, ts.URL, tc.APIKey, seq, fam, pool[k%len(pool)])
				if status != http.StatusOK && status != http.StatusTooManyRequests {
					errs <- fmt.Errorf("%s seq %d: status %d body %v", tc.Name, seq, status, body)
				}
			}
			// Interleave scrapes with traffic: the metrics and stats
			// paths read the same guarded state the pumps write.
			for _, ep := range []string{"/metrics", "/v1/stats", "/readyz"} {
				resp, err := http.Get(ts.URL + ep)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", ep, err)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			g.GoalReport()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := g.Stats()
	if s.Accepted+s.Rejected != goroutines*2 {
		t.Errorf("accepted %d + rejected %d != %d requests", s.Accepted, s.Rejected, goroutines*2)
	}
	if got := int64(len(g.AuditRecords())); got != goroutines*2 {
		t.Errorf("audit records %d, want %d (one per request)", got, goroutines*2)
	}
}
