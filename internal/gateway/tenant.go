package gateway

import (
	"sort"
	"sync"

	"repro/internal/core"
)

// recentSQLCap bounds the per-tenant ring of recently served distinct
// queries the tuner recommends over.
const recentSQLCap = 64

// tenantState is one tenant's runtime: the admission queue its pumps
// drain, cumulative goal accounting, the sliding observation window, and
// counters for the observability surface.
//
// Cumulative goal accounting is deliberately order-insensitive: goalMet
// counts completed queries at or under each goal step's edge, so the
// goal level derived from it is identical no matter how concurrent
// completions interleave — the property the determinism suite pins.
type tenantState struct {
	cfg      TenantConfig
	goal     core.Goal
	allow    map[string]bool // relation allowlist; nil = all
	families map[string]bool

	// queue is the admission queue: handlers enqueue (or 429 when
	// full), pumps drain. Closed by Shutdown after the drain completes.
	queue chan *job

	mu        sync.Mutex
	admitted  int64            // conflint:guardedby mu
	completed int64            // conflint:guardedby mu
	errored   int64            // conflint:guardedby mu
	timeouts  int64            // conflint:guardedby mu
	rejected  map[string]int64 // conflint:guardedby mu (by reason)
	simTotal  float64          // conflint:guardedby mu
	goalMet   []int64          // conflint:guardedby mu (per goal step: completed with s <= X)
	mix       map[string]int64 // conflint:guardedby mu (by family)

	window     []windowEntry // conflint:guardedby mu (ring of recent completions)
	windowPos  int           // conflint:guardedby mu
	recentSQL  []string      // conflint:guardedby mu (ring of recent query texts)
	recentSet  map[string]bool
	recentPos  int
	lastTuneAt int64 // conflint:guardedby mu (completed count at last tuner signal)
}

type windowEntry struct {
	seconds  float64
	timedOut bool
}

func newTenantState(cfg TenantConfig) *tenantState {
	return &tenantState{
		cfg:       cfg,
		goal:      cfg.goalOf(),
		allow:     cfg.allowSet(),
		families:  cfg.familySet(),
		queue:     make(chan *job, cfg.MaxQueue),
		rejected:  make(map[string]int64),
		goalMet:   make([]int64, len(cfg.goalOf().Steps)),
		mix:       make(map[string]int64),
		window:    make([]windowEntry, 0, cfg.Window),
		recentSQL: make([]string, 0, recentSQLCap),
		recentSet: make(map[string]bool, recentSQLCap),
	}
}

// noteAdmitted counts an accepted query at enqueue time.
func (t *tenantState) noteAdmitted(family string) {
	t.mu.Lock()
	t.admitted++
	t.mix[family]++
	t.mu.Unlock()
}

// noteRejected counts a rejection by reason.
func (t *tenantState) noteRejected(reason string) {
	t.mu.Lock()
	t.rejected[reason]++
	t.mu.Unlock()
}

// noteCompleted folds one finished query into the cumulative and
// sliding-window accounting, and reports whether the tenant's sliding
// window is full and in violation of its goal — the tuner trigger.
func (t *tenantState) noteCompleted(sqlText string, seconds float64, timedOut, errored bool) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.completed++
	if errored {
		t.errored++
		return false
	}
	if timedOut {
		t.timeouts++
	} else {
		t.simTotal += seconds
		for i, st := range t.goal.Steps {
			if seconds <= st.X {
				t.goalMet[i]++
			}
		}
	}

	if len(t.window) < t.cfg.Window {
		t.window = append(t.window, windowEntry{seconds, timedOut})
	} else {
		t.window[t.windowPos] = windowEntry{seconds, timedOut}
		t.windowPos = (t.windowPos + 1) % t.cfg.Window
	}

	if !t.recentSet[sqlText] {
		t.recentSet[sqlText] = true
		if len(t.recentSQL) < recentSQLCap {
			t.recentSQL = append(t.recentSQL, sqlText)
		} else {
			delete(t.recentSet, t.recentSQL[t.recentPos])
			t.recentSQL[t.recentPos] = sqlText
			t.recentPos = (t.recentPos + 1) % recentSQLCap
		}
	}

	if len(t.window) < t.cfg.Window {
		return false
	}
	if t.completed-t.lastTuneAt < int64(t.cfg.Window) {
		return false
	}
	if t.windowGoalLevelLocked() >= 1 {
		return false
	}
	t.lastTuneAt = t.completed
	return true
}

// windowGoalLevelLocked grades the sliding window against the goal.
func (t *tenantState) windowGoalLevelLocked() float64 {
	ms := make([]core.Measure, len(t.window))
	for i, w := range t.window {
		ms[i] = core.Measure{Seconds: w.seconds, TimedOut: w.timedOut}
	}
	return t.goal.Satisfaction(core.NewCFC(ms, 0))
}

// goalLevelLocked grades the cumulative run: the fraction of goal steps
// where at least Frac of all completed queries (timeouts included in
// the denominator) landed at or under the step edge. This equals
// core.Goal.Satisfaction over the cumulative CFC, computed from O(steps)
// counters instead of O(queries) samples.
func (t *tenantState) goalLevelLocked() float64 {
	if len(t.goal.Steps) == 0 {
		return 1
	}
	denom := t.completed - t.errored
	if denom == 0 {
		return 1
	}
	met := 0
	for i, st := range t.goal.Steps {
		if float64(t.goalMet[i])/float64(denom) >= st.Frac {
			met++
		}
	}
	return float64(met) / float64(len(t.goal.Steps))
}

// recentQueries copies the distinct recent query texts, sorted (the
// tuner wants the workload's support in a deterministic order).
func (t *tenantState) recentQueries() []string {
	t.mu.Lock()
	out := make([]string, len(t.recentSQL))
	copy(out, t.recentSQL)
	t.mu.Unlock()
	sort.Strings(out)
	return out
}

// TenantSnapshot is the per-tenant observability record served by
// /v1/stats and folded into BENCH_gateway.json.
type TenantSnapshot struct {
	Tenant    string           `json:"tenant"`
	Admitted  int64            `json:"admitted"`
	Completed int64            `json:"completed"`
	Errored   int64            `json:"errored,omitempty"`
	Timeouts  int64            `json:"timeouts"`
	Rejected  map[string]int64 `json:"rejected,omitempty"`

	// GoalLevel is the cumulative goal satisfaction level in [0,1].
	GoalLevel float64 `json:"goal_level"`
	// WindowGoalLevel grades only the sliding window (0 when the window
	// has not filled yet).
	WindowGoalLevel float64 `json:"window_goal_level"`
	// WindowP50/P95 are sliding-window latency quantiles in simulated
	// seconds (-1 when the quantile falls among timeouts).
	WindowP50 float64 `json:"window_p50_seconds"`
	WindowP95 float64 `json:"window_p95_seconds"`

	MeanSimSeconds float64          `json:"mean_sim_seconds"`
	Mix            map[string]int64 `json:"mix,omitempty"`
}

// snapshot copies the tenant's counters.
func (t *tenantState) snapshot() TenantSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TenantSnapshot{
		Tenant:    t.cfg.Name,
		Admitted:  t.admitted,
		Completed: t.completed,
		Errored:   t.errored,
		Timeouts:  t.timeouts,
		GoalLevel: t.goalLevelLocked(),
	}
	if n := t.completed - t.errored - t.timeouts; n > 0 {
		s.MeanSimSeconds = t.simTotal / float64(n)
	}
	if len(t.rejected) > 0 {
		s.Rejected = make(map[string]int64, len(t.rejected))
		for k, v := range t.rejected {
			s.Rejected[k] = v
		}
	}
	if len(t.mix) > 0 {
		s.Mix = make(map[string]int64, len(t.mix))
		for k, v := range t.mix {
			s.Mix[k] = v
		}
	}
	if len(t.window) > 0 {
		ms := make([]core.Measure, len(t.window))
		for i, w := range t.window {
			ms[i] = core.Measure{Seconds: w.seconds, TimedOut: w.timedOut}
		}
		cfc := core.NewCFC(ms, 0)
		if len(t.window) == t.cfg.Window {
			s.WindowGoalLevel = t.goal.Satisfaction(cfc)
		}
		s.WindowP50 = finiteOrNeg(cfc.Quantile(0.50))
		s.WindowP95 = finiteOrNeg(cfc.Quantile(0.95))
	}
	return s
}
