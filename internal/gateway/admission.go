package gateway

import (
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/sql"
)

// job is one admitted query riding a tenant queue: parsed and authorized
// by the handler, executed by a pump, answered over reply.
type job struct {
	seq     int64
	tenant  *tenantState
	family  string
	sqlText string
	q       *sql.Query

	// reply carries the execution outcome back to the waiting handler.
	// Buffered: the pump never blocks on a slow (or gone) client.
	reply chan jobResult
}

type jobResult struct {
	res *exec.Result
	m   engine.Measure
	err error
}

// pump drains one tenant's admission queue. Each tenant runs
// MaxConcurrency pumps, so the queue's fan-out is the tenant's
// concurrency cap; the global gate bounds engine load across tenants.
// Pumps exit when Shutdown closes the queue after the drain completes.
//
// conflint:hotpath — every admitted query flows through this loop.
func (g *Gateway) pump(t *tenantState) {
	defer g.pumpWG.Done()
	for j := range t.queue {
		g.gate <- struct{}{} // conflint:ignore bounded semaphore acquire: gate capacity is the global concurrency cap and every slot is released below
		g.inflight.Add(1)
		res, m, err := g.run(j.q, g.cfg.TimeoutSeconds)
		g.inflight.Add(-1)
		<-g.gate // conflint:ignore paired release of the slot acquired above; receives from a non-empty buffered channel
		g.finish(j, res, m, err)
	}
}

// finish closes out one admitted query: audit record first, then the
// tenant's accounting, then the tuner nudge, then the reply, and the
// drain ticket last — so by the time Shutdown's drain wait returns,
// every accepted query has its completion on the audit log (the
// zero-dropped-after-accept contract).
func (g *Gateway) finish(j *job, res *exec.Result, m engine.Measure, err error) {
	rec := AuditRecord{
		Seq:      j.seq,
		Tenant:   j.tenant.cfg.Name,
		Family:   j.family,
		Decision: DecisionAccept,
		Status:   200,
		SQLHash:  hashSQL(j.sqlText),
	}
	if err != nil {
		rec.Status = 500
		rec.Reason = "execution-error"
	} else {
		rec.SimSeconds = m.Seconds
		rec.TimedOut = m.TimedOut
		if res != nil {
			rec.Rows = len(res.Rows)
		}
	}
	g.audit.add(rec)
	violated := j.tenant.noteCompleted(j.sqlText, m.Seconds, m.TimedOut, err != nil)
	if violated {
		if tn := g.tunerP.Load(); tn != nil {
			tn.signal(j.tenant.cfg.Name)
		}
	}
	if as := g.autoP.Load(); as != nil {
		as.observe(m.Seconds, m.TimedOut, err != nil)
	}
	j.reply <- jobResult{res: res, m: m, err: err} // conflint:ignore reply is buffered (cap 1) with exactly one send per job, so this never blocks
	g.drainWG.Done()
}

// admit places a parsed, authorized query on its tenant's queue. It
// returns the job to wait on, or a rejection reason. The drain ticket is
// taken under the accept lock — Shutdown flips draining under the write
// lock, so every ticket is either counted by the drain wait or never
// issued; there is no window where an accepted query can be dropped.
func (g *Gateway) admit(t *tenantState, seq int64, family, sqlText string, q *sql.Query) (*job, string) {
	j := &job{
		seq:     seq,
		tenant:  t,
		family:  family,
		sqlText: sqlText,
		q:       q,
		reply:   make(chan jobResult, 1),
	}
	g.acceptMu.RLock()
	defer g.acceptMu.RUnlock()
	if g.draining {
		return nil, ReasonDraining
	}
	g.drainWG.Add(1)
	select {
	case t.queue <- j:
		t.noteAdmitted(family)
		return j, ""
	default:
		g.drainWG.Done()
		return nil, ReasonQueueFull
	}
}
