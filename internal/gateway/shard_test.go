package gateway

import (
	"fmt"
	"testing"
	"time"
)

// TestShardedGatewayByteIdentical pins the cluster's contract at the
// gateway layer: result rows from a sharded gateway are identical to an
// unsharded one serving the same backend (simulated cost shrinks with
// partition parallelism — the scaling claim — so only the result bytes
// must match), and /v1/stats reports the cluster.
func TestShardedGatewayByteIdentical(t *testing.T) {
	_, plainTS := newTestGateway(t, testConfig())
	shardedCfg := testConfig()
	shardedCfg.Shards = 4
	shardedCfg.ShardPool = 4
	sharded, shardedTS := newTestGateway(t, shardedCfg)

	for i := 0; i < 4; i++ {
		family := "NREF2J"
		key := "alpha-key"
		if i%2 == 1 {
			family = "NREF3J"
			key = "beta-key"
		}
		sqlText := poolQuery(t, plainTS.URL, key, family, i)
		st1, body1, _ := postQuery(t, plainTS.URL, key, int64(i), family, sqlText)
		st2, body2, _ := postQuery(t, shardedTS.URL, key, int64(i), family, sqlText)
		if st1 != 200 || st2 != 200 {
			t.Fatalf("query %d: statuses %d/%d", i, st1, st2)
		}
		for _, field := range []string{"row_count", "cols", "rows"} {
			if got, want := fmt.Sprint(body2[field]), fmt.Sprint(body1[field]); got != want {
				t.Errorf("query %d: sharded %s = %v, unsharded %v", i, field, got, want)
			}
		}
		// Simulated cost differs by design (max-of-shards + merge vs
		// serial; scaling is asserted by shardbench) — only sanity-check
		// that the sharded path billed something.
		if secs, _ := body2["sim_seconds"].(float64); secs <= 0 {
			t.Errorf("query %d: sharded sim_seconds = %v, want > 0", i, secs)
		}
	}

	s := sharded.Stats()
	if s.Sharding == nil {
		t.Fatal("sharded gateway reports no Sharding snapshot")
	}
	if s.Sharding.Shards != 4 || s.Sharding.Mode != "hash" {
		t.Errorf("Sharding = %d shards mode %q, want 4/hash", s.Sharding.Shards, s.Sharding.Mode)
	}
	if s.Sharding.Queries < 4 {
		t.Errorf("cluster served %d queries, want >= 4", s.Sharding.Queries)
	}
}

// TestGatewayAutoscalerDryRun drives enough traffic through an
// autoscaling gateway with an unreachable goal to close several metric
// windows, and checks the dry-run contract: proposals are audited, the
// topology never changes.
func TestGatewayAutoscalerDryRun(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 2
	cfg.Autoscale = true
	cfg.AutoscaleDryRun = true
	cfg.AutoscaleWindow = 8
	// Every completion misses a goal of "100% under a nanosecond", so
	// scale-out-goal fires on each window.
	cfg.AutoscaleGoal = "0.000000001:1.0"
	g, ts := newTestGateway(t, cfg)

	sqlText := poolQuery(t, ts.URL, "alpha-key", "NREF2J", 0)
	for i := 0; i < 16; i++ {
		if st, body, _ := postQuery(t, ts.URL, "alpha-key", int64(i), "NREF2J", sqlText); st != 200 {
			t.Fatalf("query %d: status %d body %v", i, st, body)
		}
	}

	// The worker evaluates windows asynchronously; wait for at least one.
	deadline := time.Now().Add(10 * time.Second)
	var sh *ShardSnapshot
	for {
		s := g.Stats()
		sh = s.Sharding
		if sh != nil && sh.AutoscaleWindows >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no autoscale window evaluated; sharding = %+v", sh)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sh.Autoscale || !sh.AutoscaleDryRun {
		t.Errorf("snapshot flags = %+v, want autoscale dry-run", sh)
	}
	if sh.AutoscaleActions["dry-run"] < 1 {
		t.Errorf("AutoscaleActions = %v, want at least one dry-run", sh.AutoscaleActions)
	}
	if sh.Shards != 2 {
		t.Errorf("dry-run mutated topology: %d shards, want 2", sh.Shards)
	}
	if sh.Reshards != 0 {
		t.Errorf("dry-run performed %d reshards, want 0", sh.Reshards)
	}
}

// TestGatewayAutoscalerApplies checks a live (non-dry-run) scale-out:
// the violating goal doubles the shard count, bounded by max_shards, and
// results keep matching the unsharded baseline afterwards.
func TestGatewayAutoscalerApplies(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 1
	cfg.Autoscale = true
	cfg.AutoscaleWindow = 8
	cfg.MaxShards = 2
	cfg.AutoscaleGoal = "0.000000001:1.0"
	g, ts := newTestGateway(t, cfg)
	_, plainTS := newTestGateway(t, testConfig())

	sqlText := poolQuery(t, ts.URL, "alpha-key", "NREF2J", 1)
	_, want, _ := postQuery(t, plainTS.URL, "alpha-key", 0, "NREF2J", sqlText)
	for i := 0; i < 16; i++ {
		if st, _, _ := postQuery(t, ts.URL, "alpha-key", int64(i), "NREF2J", sqlText); st != 200 {
			t.Fatalf("query %d failed", i)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for g.Stats().Sharding.Reshards == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("autoscaler never resharded; sharding = %+v", g.Stats().Sharding)
		}
		time.Sleep(10 * time.Millisecond)
	}
	sh := g.Stats().Sharding
	if sh.Shards != 2 {
		t.Errorf("scaled to %d shards, want 2 (doubled from 1, capped by max)", sh.Shards)
	}
	if sh.AutoscaleActions["apply"] < 1 {
		t.Errorf("AutoscaleActions = %v, want at least one apply", sh.AutoscaleActions)
	}

	st, got, _ := postQuery(t, ts.URL, "alpha-key", 99, "NREF2J", sqlText)
	if st != 200 {
		t.Fatalf("post-reshard query failed: %d", st)
	}
	for _, field := range []string{"row_count", "rows"} {
		if fmt.Sprint(got[field]) != fmt.Sprint(want[field]) {
			t.Errorf("post-reshard %s = %v, want %v", field, got[field], want[field])
		}
	}
}
