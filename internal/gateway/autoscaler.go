package gateway

import (
	"sync"
	"sync/atomic"

	"repro/internal/autopilot"
	"repro/internal/core"
	"repro/internal/shard"
)

// autoscaler is the gateway's elastic loop: every completed query lands
// in an accumulating window; when the window fills it is graded into
// shard.WindowMetrics (goal level over the window's CFC, mean simulated
// seconds, queue backlog) and handed — off the hot path — to the shard
// package's pure Recommender and side-effecting Updater, which may
// reshard the cluster or resize its worker pool live, within the
// configured bounds. In dry-run mode every proposal is audited but
// nothing mutates.
//
// The worker mirrors the tuner's shape: one goroutine serializes scale
// actions, windows arriving mid-action coalesce into at most one
// pending evaluation.
type autoscaler struct {
	g    *Gateway
	cl   *shard.Cluster
	goal core.Goal
	rec  *shard.Recommender
	upd  *shard.Updater

	mu      sync.Mutex
	entries []windowEntry         // conflint:guardedby mu (accumulating window)
	errored int                   // conflint:guardedby mu
	windowN int64                 // conflint:guardedby mu (windows closed so far)
	pending []shard.WindowMetrics // conflint:guardedby mu (closed, unevaluated)
	// lastReport is the most recent window's full autopilot digest, the
	// upstream form of the metrics handed to the scaling rules.
	lastReport autopilot.WindowReport // conflint:guardedby mu

	windows atomic.Int64 // windows evaluated

	// trigger wakes the worker; capacity 1 so bursts of window closes
	// collapse into one drain of the pending list.
	trigger chan struct{}
	done    chan struct{}
	stop1   sync.Once
}

func newAutoscaler(g *Gateway, cl *shard.Cluster) *autoscaler {
	upd := shard.NewUpdater(cl, shard.Bounds{
		MinShards: g.cfg.MinShards, MaxShards: g.cfg.MaxShards,
		MinPool: g.cfg.MinPool, MaxPool: g.cfg.MaxPool,
	}, g.cfg.AutoscaleDryRun)
	upd.Cooldown = g.cfg.AutoscaleCooldown
	return &autoscaler{
		g:    g,
		cl:   cl,
		goal: g.cfg.autoscaleGoalOf(),
		rec: &shard.Recommender{
			Rules:   shard.DefaultRules(g.cfg.AutoscaleTarget),
			Predict: cl.PredictSeconds,
		},
		upd:     upd,
		entries: make([]windowEntry, 0, g.cfg.AutoscaleWindow),
		trigger: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
}

// start launches the scale worker.
func (as *autoscaler) start() {
	// conflint:worker lifecycle=trigger autoscale loop; autoscaler.stop closes trigger and waits on done
	go func() {
		defer close(as.done)
		for range as.trigger {
			as.drain()
		}
	}()
}

// stop ends the loop and waits out an in-flight reshard — a reshard
// rebuilds partitions and must never be abandoned mid-swap (the same
// shutdown-ordering contract as the tuner's Transition).
func (as *autoscaler) stop() {
	as.stop1.Do(func() { close(as.trigger) })
	<-as.done
}

// observe folds one completion into the accumulating window; on the
// hot path it only appends and, at a window boundary, grades and
// enqueues the metrics — the expensive reshard work happens on the
// worker goroutine.
func (as *autoscaler) observe(seconds float64, timedOut, errored bool) {
	as.mu.Lock()
	if errored {
		as.errored++
	} else {
		as.entries = append(as.entries, windowEntry{seconds, timedOut})
	}
	if len(as.entries)+as.errored < as.g.cfg.AutoscaleWindow {
		as.mu.Unlock()
		return
	}
	w := as.closeWindowLocked()
	as.pending = append(as.pending, w)
	as.mu.Unlock()
	select {
	case as.trigger <- struct{}{}:
	default:
	}
}

// closeWindowLocked grades the filled window into the autopilot's
// WindowReport — the same digest the batch observer produces — and
// lowers it to shard.WindowMetrics through the ScaleMetrics bridge, so
// the gateway's live loop and the autopilot's batch loop feed the
// scaling rules through one code path. The report is kept for
// observability (lastReport).
func (as *autoscaler) closeWindowLocked() shard.WindowMetrics {
	ms := make([]core.Measure, len(as.entries))
	var sum float64
	n := 0
	timeouts := 0
	for i, e := range as.entries {
		ms[i] = core.Measure{Seconds: e.seconds, TimedOut: e.timedOut}
		if e.timedOut {
			timeouts++
		} else {
			sum += e.seconds
			n++
		}
	}
	as.windowN++
	cfc := core.NewCFC(ms, 0)
	rep := autopilot.WindowReport{
		Window:       int(as.windowN),
		Queries:      len(as.entries),
		Timeouts:     timeouts,
		P50:          cfc.Quantile(0.50),
		P95:          cfc.Quantile(0.95),
		P99:          cfc.Quantile(0.99),
		Satisfaction: as.goal.Satisfaction(cfc),
	}
	rep.Satisfied = rep.Satisfaction >= 1
	if n > 0 {
		rep.MeanSeconds = sum / float64(n)
	}
	as.lastReport = rep
	as.entries = as.entries[:0]
	as.errored = 0
	return rep.ScaleMetrics(as.g.queueDepth())
}

// drain evaluates every pending window in order.
func (as *autoscaler) drain() {
	for {
		as.mu.Lock()
		if len(as.pending) == 0 {
			as.mu.Unlock()
			return
		}
		w := as.pending[0]
		as.pending = as.pending[1:]
		as.mu.Unlock()

		cur := shard.State{Shards: as.cl.Shards(), Pool: as.cl.Pool()}
		as.upd.Apply(as.rec.Recommend(cur, w))
		as.windows.Add(1)
	}
}

// queueDepth sums the tenants' admission queue backlogs.
func (g *Gateway) queueDepth() float64 {
	var depth int
	for _, name := range g.tenantOrder {
		depth += len(g.tenants[name].queue)
	}
	return float64(depth)
}
