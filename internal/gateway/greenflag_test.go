// Greenflag conformance: everything a well-behaved tenant does must
// succeed — each granted family, concurrent mixed-tenant load, and the
// readiness lifecycle.
package gateway

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestGreenflagEveryFamilyPerTenant runs one pool query from every
// family each tenant is granted and checks the success envelope.
func TestGreenflagEveryFamilyPerTenant(t *testing.T) {
	g, ts := newTestGateway(t, testConfig())
	seq := int64(0)
	for _, tc := range threeTenants() {
		for _, fam := range tc.Families {
			sqlText := poolQuery(t, ts.URL, tc.APIKey, fam, 0)
			status, body, _ := postQuery(t, ts.URL, tc.APIKey, seq, fam, sqlText)
			if status != http.StatusOK {
				t.Fatalf("%s/%s: status %d, body %v", tc.Name, fam, status, body)
			}
			if body["tenant"] != tc.Name {
				t.Errorf("%s/%s: tenant %v in response", tc.Name, fam, body["tenant"])
			}
			if body["family"] != fam {
				t.Errorf("%s/%s: family %v in response", tc.Name, fam, body["family"])
			}
			sim, ok := body["sim_seconds"].(float64)
			if !ok || sim < 0 {
				t.Errorf("%s/%s: bad sim_seconds %v", tc.Name, fam, body["sim_seconds"])
			}
			rec := lastAudit(t, g, func(r AuditRecord) bool { return r.Seq == seq })
			if rec.Decision != DecisionAccept || rec.Status != 200 || rec.Tenant != tc.Name {
				t.Errorf("%s/%s: audit %+v", tc.Name, fam, rec)
			}
			seq++
		}
	}
	s := g.Stats()
	if s.Accepted != seq {
		t.Errorf("accepted %d, want %d", s.Accepted, seq)
	}
	if s.Rejected != 0 {
		t.Errorf("rejected %d, want 0", s.Rejected)
	}
}

// TestGreenflagConcurrentMixedTenants drives all tenants at once and
// expects every request to succeed (caps exceed the offered load).
func TestGreenflagConcurrentMixedTenants(t *testing.T) {
	g, ts := newTestGateway(t, testConfig())
	tenants := threeTenants()
	const perTenant = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(tenants)*perTenant)
	for ti, tc := range tenants {
		for k := 0; k < perTenant; k++ {
			wg.Add(1)
			go func(ti, k int, tc TenantConfig) {
				defer wg.Done()
				fam := tc.Families[k%len(tc.Families)]
				sqlText := poolQuery(t, ts.URL, tc.APIKey, fam, k)
				seq := int64(ti*perTenant + k)
				status, body, _ := postQuery(t, ts.URL, tc.APIKey, seq, fam, sqlText)
				if status != http.StatusOK {
					errs <- fmt.Errorf("%s seq %d: status %d body %v", tc.Name, seq, status, body)
				}
			}(ti, k, tc)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s := g.Stats()
	want := int64(len(tenants) * perTenant)
	if s.Accepted != want || s.Rejected != 0 {
		t.Errorf("accepted %d rejected %d, want %d/0", s.Accepted, s.Rejected, want)
	}
	for _, snap := range s.Tenants {
		if snap.Completed != perTenant {
			t.Errorf("tenant %s completed %d, want %d", snap.Tenant, snap.Completed, perTenant)
		}
		if snap.GoalLevel < 0 || snap.GoalLevel > 1 {
			t.Errorf("tenant %s goal level %v out of range", snap.Tenant, snap.GoalLevel)
		}
	}
}

// TestGreenflagReadyzFlipsOnlyAfterLoad gates the backend build on a
// channel: before release the gateway must refuse queries with
// not-ready and report 503 on /readyz; after release both flip.
func TestGreenflagReadyzFlipsOnlyAfterLoad(t *testing.T) {
	release := make(chan struct{})
	shared := sharedBackend(t)
	g, err := New(Options{
		Config: testConfig(),
		BackendFunc: func(Config) (*Backend, error) {
			<-release
			return shared, nil
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		g.Shutdown(sctx)
	})

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-load /readyz status %d, want 503", resp.StatusCode)
	}
	status, body, _ := postQuery(t, ts.URL, "alpha-key", 0, "NREF2J", "SELECT p_name FROM protein")
	if status != http.StatusServiceUnavailable || body["error"] != ReasonNotReady {
		t.Fatalf("pre-load query: status %d body %v, want 503 %s", status, body, ReasonNotReady)
	}
	rec := lastAudit(t, g, func(r AuditRecord) bool { return r.Reason == ReasonNotReady })
	if rec.Tenant != "alpha" || rec.Status != 503 {
		t.Errorf("not-ready audit %+v", rec)
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := g.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-load /readyz status %d, want 200", resp.StatusCode)
	}
	sqlText := poolQuery(t, ts.URL, "alpha-key", "NREF2J", 0)
	status, body, _ = postQuery(t, ts.URL, "alpha-key", 1, "NREF2J", sqlText)
	if status != http.StatusOK {
		t.Fatalf("post-load query: status %d body %v", status, body)
	}

	// /healthz is alive through the whole lifecycle.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", resp.StatusCode)
	}
}

// TestGreenflagMetricsAndStats sanity-checks the observability surface
// after a few queries.
func TestGreenflagMetricsAndStats(t *testing.T) {
	g, ts := newTestGateway(t, testConfig())
	sqlText := poolQuery(t, ts.URL, "alpha-key", "NREF2J", 1)
	for i := int64(0); i < 2; i++ {
		if status, body, _ := postQuery(t, ts.URL, "alpha-key", i, "NREF2J", sqlText); status != http.StatusOK {
			t.Fatalf("query: status %d body %v", status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	text := string(data)
	for _, want := range []string{
		"gateway_ready 1",
		"gateway_accepted_total 2",
		`gateway_tenant_admitted_total{tenant="alpha"} 2`,
		`gateway_tenant_goal_level{tenant="alpha"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	s := g.Stats()
	if len(s.Tenants) != 3 || s.Tenants[0].Tenant != "alpha" {
		t.Errorf("stats tenants %+v", s.Tenants)
	}
}
