// Redflag conformance: every rejection path must answer with the right
// HTTP status, the right JSON error, and an audit record carrying the
// right reason. One test per path, all over httptest (no real sockets).
package gateway

import (
	"bytes"
	"net/http"
	"testing"
	"time"
)

// expectReject asserts the response and the audit trail for one
// rejected request.
func expectReject(t *testing.T, g *Gateway, status int, body map[string]any, wantStatus int, wantReason, wantTenant string) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("status %d, want %d (body %v)", status, wantStatus, body)
	}
	if body["error"] != wantReason {
		t.Fatalf("error %v, want %q", body["error"], wantReason)
	}
	rec := lastAudit(t, g, func(r AuditRecord) bool { return r.Reason == wantReason })
	if rec.Decision != DecisionReject {
		t.Errorf("audit decision %q, want reject", rec.Decision)
	}
	if rec.Status != wantStatus {
		t.Errorf("audit status %d, want %d", rec.Status, wantStatus)
	}
	if rec.Tenant != wantTenant {
		t.Errorf("audit tenant %q, want %q", rec.Tenant, wantTenant)
	}
}

func TestRedflagBadAPIKey(t *testing.T) {
	g, ts := newTestGateway(t, testConfig())
	status, body, _ := postQuery(t, ts.URL, "who-dis", 0, "NREF2J", "SELECT p_name FROM protein")
	expectReject(t, g, status, body, http.StatusUnauthorized, ReasonBadAPIKey, "-")

	// A missing key is the same violation.
	status, body, _ = postQuery(t, ts.URL, "", 0, "NREF2J", "SELECT p_name FROM protein")
	if status != http.StatusUnauthorized || body["error"] != ReasonBadAPIKey {
		t.Fatalf("missing key: status %d body %v", status, body)
	}
}

func TestRedflagFamilyCapabilityViolation(t *testing.T) {
	g, ts := newTestGateway(t, testConfig())
	// alpha holds NREF2J only; asking for NREF3J is a capability violation.
	status, body, _ := postQuery(t, ts.URL, "alpha-key", 5, "NREF3J", "SELECT p_name FROM protein")
	expectReject(t, g, status, body, http.StatusForbidden, ReasonCapability, "alpha")

	// The pool endpoint enforces the same grant.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/pool?family=NREF3J", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", "alpha-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("pool across grant: status %d, want 403", resp.StatusCode)
	}
}

func TestRedflagRelationCapabilityViolation(t *testing.T) {
	locked := TenantConfig{
		Name: "locked", APIKey: "locked-key", Families: []string{"NREF2J"},
		Relations: []string{"protein"}, MaxQueue: 4, MaxConcurrency: 1, Window: 8,
	}
	g, ts := newTestGateway(t, testConfig(locked))
	// Inside the allowlist: fine.
	status, body, _ := postQuery(t, ts.URL, "locked-key", 0, "NREF2J", "SELECT p_name FROM protein")
	if status != http.StatusOK {
		t.Fatalf("allowed relation: status %d body %v", status, body)
	}
	// taxonomy is outside the allowlist.
	status, body, _ = postQuery(t, ts.URL, "locked-key", 1, "NREF2J", "SELECT nref_id FROM taxonomy")
	expectReject(t, g, status, body, http.StatusForbidden, ReasonCapability, "locked")
}

func TestRedflagMalformedSQL(t *testing.T) {
	g, ts := newTestGateway(t, testConfig())
	for _, bad := range []string{
		"SELECT FROM WHERE",
		"SELECT p_name FROM no_such_table",
		"SELECT no_such_col FROM protein",
	} {
		status, body, _ := postQuery(t, ts.URL, "alpha-key", 7, "NREF2J", bad)
		if status != http.StatusBadRequest || body["error"] != ReasonMalformedSQL {
			t.Errorf("%q: status %d body %v, want 400 %s", bad, status, body, ReasonMalformedSQL)
		}
	}
	rec := lastAudit(t, g, func(r AuditRecord) bool { return r.Reason == ReasonMalformedSQL })
	if rec.Status != 400 || rec.Tenant != "alpha" {
		t.Errorf("malformed-sql audit %+v", rec)
	}
}

func TestRedflagReadOnlyEnforcement(t *testing.T) {
	g, ts := newTestGateway(t, testConfig())
	status, body, _ := postQuery(t, ts.URL, "alpha-key", 9, "NREF2J",
		"INSERT INTO protein VALUES ('NF1', 'p', 1, 'SEQ', 3)")
	expectReject(t, g, status, body, http.StatusForbidden, ReasonReadOnly, "alpha")
}

func TestRedflagMalformedEnvelope(t *testing.T) {
	g, ts := newTestGateway(t, testConfig())
	status, body, _ := postRaw(t, ts.URL, "alpha-key", []byte("{not json"))
	expectReject(t, g, status, body, http.StatusBadRequest, ReasonBadRequest, "alpha")

	// Wrong method is the same reason.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/query", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-API-Key", "alpha-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET /v1/query: status %d, want 400", resp.StatusCode)
	}
}

func TestRedflagOversizedBody(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBodyBytes = 256
	g, ts := newTestGateway(t, cfg)
	huge := append([]byte(`{"seq":1,"family":"NREF2J","sql":"SELECT p_name FROM protein WHERE p_name = '`),
		bytes.Repeat([]byte("x"), 1024)...)
	huge = append(huge, []byte(`'"}`)...)
	status, body, _ := postRaw(t, ts.URL, "alpha-key", huge)
	expectReject(t, g, status, body, http.StatusRequestEntityTooLarge, ReasonOversized, "alpha")
}

// TestRedflagQueueFullBackpressure constructs queue saturation
// deterministically: the test occupies the global gate so the tenant's
// single pump blocks mid-dequeue, fills the depth-1 queue, and the next
// arrival must bounce with 429 + Retry-After.
func TestRedflagQueueFullBackpressure(t *testing.T) {
	tight := TenantConfig{
		Name: "tight", APIKey: "tight-key", Families: []string{"NREF2J"},
		MaxQueue: 1, MaxConcurrency: 1, Window: 8,
	}
	cfg := testConfig(tight)
	cfg.GlobalInflight = 1
	g, ts := newTestGateway(t, cfg)
	sqlText := poolQuery(t, ts.URL, "tight-key", "NREF2J", 0)

	// Occupy the global gate: the pump can dequeue but not execute.
	g.gate <- struct{}{}
	type res struct {
		status int
		body   map[string]any
	}
	results := make(chan res, 2)
	post := func(seq int64) {
		status, body, _ := postQuery(t, ts.URL, "tight-key", seq, "NREF2J", sqlText)
		results <- res{status, body}
	}
	go post(0)
	// Wait until the pump holds query 0 (queue drained, pump parked at
	// the gate), then fill the queue with query 1.
	waitUntil(t, func() bool {
		st := g.tenants["tight"]
		st.mu.Lock()
		admitted := st.admitted
		st.mu.Unlock()
		return admitted == 1 && len(st.queue) == 0
	})
	go post(1)
	waitUntil(t, func() bool { return len(g.tenants["tight"].queue) == 1 })

	// Queue full, pump busy: the third arrival must bounce.
	status, body, hdr := postQuery(t, ts.URL, "tight-key", 2, "NREF2J", sqlText)
	expectReject(t, g, status, body, http.StatusTooManyRequests, ReasonQueueFull, "tight")
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Release the gate; both held queries must complete.
	<-g.gate
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Errorf("held query: status %d body %v", r.status, r.body)
		}
	}
	s := g.Stats()
	if s.Accepted != 2 || s.Rejected != 1 {
		t.Errorf("accepted %d rejected %d, want 2/1", s.Accepted, s.Rejected)
	}
}

// TestRedflagOverCapConcurrency floods one tight tenant far beyond its
// queue + concurrency caps: the gateway must stay bounded — every
// response is either a success or a queue-full 429, and at no point do
// more than GlobalInflight queries execute.
func TestRedflagOverCapConcurrency(t *testing.T) {
	tight := TenantConfig{
		Name: "tight", APIKey: "tight-key", Families: []string{"NREF2J"},
		MaxQueue: 2, MaxConcurrency: 1, Window: 8,
	}
	cfg := testConfig(tight)
	cfg.GlobalInflight = 1
	g, ts := newTestGateway(t, cfg)
	sqlText := poolQuery(t, ts.URL, "tight-key", "NREF2J", 2)

	const flood = 12
	statuses := make(chan int, flood)
	for i := 0; i < flood; i++ {
		go func(seq int64) {
			status, _, _ := postQuery(t, ts.URL, "tight-key", seq, "NREF2J", sqlText)
			statuses <- status
		}(int64(i))
	}
	ok, rejected := 0, 0
	for i := 0; i < flood; i++ {
		switch st := <-statuses; st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Errorf("unexpected status %d under flood", st)
		}
	}
	if ok == 0 {
		t.Error("flood: nothing admitted")
	}
	if ok+rejected != flood {
		t.Errorf("flood: %d ok + %d rejected != %d", ok, rejected, flood)
	}
	s := g.Stats()
	if s.Inflight != 0 {
		t.Errorf("inflight %d after flood settled", s.Inflight)
	}
	if got := s.Tenants[0].Rejected[ReasonQueueFull]; got != int64(rejected) {
		t.Errorf("tenant queue-full count %d, want %d", got, rejected)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
