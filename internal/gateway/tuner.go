package gateway

import (
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/recommender"
)

// tuner is the gateway's autonomic loop: when any tenant's sliding
// window violates its goal, the pump nudges the tuner, which recommends
// a configuration over the union of all tenants' recent queries and
// applies it with the engine's incremental Transition — while traffic
// keeps flowing on the engine's concurrent read path (the same
// serve-while-retuning posture as the autopilot daemon).
//
// One tuner goroutine serializes retunes; nudges arriving mid-retune
// coalesce into at most one pending trigger.
type tuner struct {
	g      *Gateway
	recCfg recommender.Config
	whatif *engine.WhatIf
	budget int64

	// trigger carries the name of the violating tenant. Capacity 1:
	// sends are non-blocking, so a burst of violations collapses into
	// one retune.
	trigger chan string
	done    chan struct{}
	stop1   sync.Once

	applied atomic.Int64
	failed  atomic.Int64
}

func newTuner(g *Gateway, recCfg recommender.Config, whatif *engine.WhatIf, budget int64) *tuner {
	return &tuner{
		g:       g,
		recCfg:  recCfg,
		whatif:  whatif,
		budget:  budget,
		trigger: make(chan string, 1),
		done:    make(chan struct{}),
	}
}

// start launches the retune loop.
func (tn *tuner) start() {
	// conflint:worker lifecycle=trigger retune loop; tuner.stop closes trigger and waits on done
	go func() {
		defer close(tn.done)
		for tenant := range tn.trigger {
			tn.retune(tenant)
		}
	}()
}

// signal nudges the tuner without blocking the hot path.
func (tn *tuner) signal(tenant string) {
	select {
	case tn.trigger <- tenant:
	default:
	}
}

// stop ends the loop and waits for an in-flight retune to finish — a
// Transition holds the engine's write lock and must never be abandoned
// mid-build (the shutdown-ordering contract shared with autopilotd).
func (tn *tuner) stop() {
	tn.stop1.Do(func() { close(tn.trigger) })
	<-tn.done
}

// retune recommends over the union of every tenant's recent distinct
// queries (all tenants share one engine, so the configuration must serve
// the blended workload) and applies the result incrementally.
func (tn *tuner) retune(string) {
	sqls := make([]string, 0, recentSQLCap)
	seen := make(map[string]bool, recentSQLCap)
	for _, name := range tn.g.tenantOrder {
		for _, s := range tn.g.tenants[name].recentQueries() {
			if !seen[s] {
				seen[s] = true
				sqls = append(sqls, s)
			}
		}
	}
	if len(sqls) == 0 {
		return
	}
	cfg, err := recommender.New(tn.g.eng(), tn.recCfg).
		Parallel(1).
		UseSession(tn.whatif).
		Recommend(sqls, tn.budget)
	if err != nil {
		tn.failed.Add(1)
		return
	}
	cfg.Name = "gw-retune"
	if err := tn.g.transition(cfg); err != nil {
		tn.failed.Add(1)
		return
	}
	tn.applied.Add(1)
}
