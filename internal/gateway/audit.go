package gateway

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Rejection reasons. Every request the gateway turns away carries
// exactly one of these in its audit record and JSON error body; the
// redflag suite pins each to its HTTP status.
const (
	ReasonDraining     = "draining"             // 503: shutdown in progress
	ReasonNotReady     = "not-ready"            // 503: catalog still loading
	ReasonOversized    = "oversized-body"       // 413: body over max_body_bytes
	ReasonBadRequest   = "bad-request"          // 400: undecodable envelope
	ReasonBadAPIKey    = "bad-api-key"          // 401: unknown or missing key
	ReasonReadOnly     = "read-only"            // 403: statement is not a SELECT
	ReasonMalformedSQL = "malformed-sql"        // 400: SELECT fails to parse/analyze
	ReasonCapability   = "capability-violation" // 403: family or relation not granted
	ReasonQueueFull    = "queue-full"           // 429: tenant queue/concurrency saturated
)

// Decisions.
const (
	DecisionAccept = "accept"
	DecisionReject = "reject"
)

// AuditRecord is the structured trace of one request through the
// pipeline. Accepted queries are recorded once, at completion, with
// their simulated cost; rejections are recorded at the rejection point
// with the reason. Every field is deterministic for a fixed
// configuration — wall-clock lives in /metrics, never here — so a
// seeded client schedule reproduces per-tenant logs byte for byte.
type AuditRecord struct {
	// Seq is the client-assigned sequence number (-1 when the request
	// carried none). The loadgen assigns schedule positions, which is
	// what makes per-tenant dumps comparable across runs.
	Seq    int64  `json:"seq"`
	Tenant string `json:"tenant"` // "-" before authentication succeeded
	Family string `json:"family,omitempty"`

	Decision string `json:"decision"`
	Reason   string `json:"reason,omitempty"`
	Status   int    `json:"status"`

	// SQLHash fingerprints the query text (FNV-1a, hex); raw SQL stays
	// out of the log.
	SQLHash string `json:"sql_hash,omitempty"`

	SimSeconds float64 `json:"sim_seconds,omitempty"`
	TimedOut   bool    `json:"timed_out,omitempty"`
	Rows       int     `json:"rows,omitempty"`

	arrival int64 // monotonic arrival index; sort tiebreak, not serialized
}

// auditor stores records in a bounded ring and optionally streams them
// as JSON lines to a sink (gatewayd's -audit file).
type auditor struct {
	mu      sync.Mutex
	records []AuditRecord // conflint:guardedby mu (ring once full)
	next    int64         // conflint:guardedby mu (arrival counter)
	dropped int64         // conflint:guardedby mu (overwritten by the ring)
	head    int           // conflint:guardedby mu (ring start once wrapped)
	cap     int
	sink    io.Writer // conflint:guardedby mu
}

func newAuditor(capacity int, sink io.Writer) *auditor {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &auditor{cap: capacity, sink: sink, records: make([]AuditRecord, 0, capacity)}
}

// add appends one record, streaming it to the sink if configured.
//
// conflint:sink gateway audit log
func (a *auditor) add(rec AuditRecord) {
	a.mu.Lock()
	rec.arrival = a.next
	a.next++
	if len(a.records) < a.cap {
		a.records = append(a.records, rec)
	} else {
		a.records[a.head] = rec
		a.head = (a.head + 1) % a.cap
		a.dropped++
	}
	if a.sink != nil {
		if data, err := json.Marshal(rec); err == nil {
			// conflint:ignore best-effort audit stream; the in-memory ring is the queryable record and sink failures must not fail queries
			a.sink.Write(append(data, '\n'))
		}
	}
	a.mu.Unlock()
}

// snapshot copies the ring in arrival order.
func (a *auditor) snapshot() []AuditRecord {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AuditRecord, 0, len(a.records))
	for i := 0; i < len(a.records); i++ {
		out = append(out, a.records[(a.head+i)%len(a.records)])
	}
	return out
}

// Records returns every retained audit record in arrival order.
func (g *Gateway) AuditRecords() []AuditRecord { return g.audit.snapshot() }

// AuditDumpTenant renders one tenant's audit log as JSON lines, ordered
// by client sequence number (arrival order as tiebreak). For a seeded
// schedule with unique sequence numbers the bytes are identical across
// runs and across any server/client parallelism.
func (g *Gateway) AuditDumpTenant(tenant string) []byte {
	recs := g.audit.snapshot()
	kept := recs[:0]
	for _, r := range recs {
		if r.Tenant == tenant {
			kept = append(kept, r)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool {
		if kept[i].Seq != kept[j].Seq {
			return kept[i].Seq < kept[j].Seq
		}
		return kept[i].arrival < kept[j].arrival
	})
	var out []byte
	for i := range kept {
		data, err := json.Marshal(&kept[i])
		if err != nil {
			continue
		}
		out = append(out, data...)
		out = append(out, '\n')
	}
	return out
}

// hashSQL fingerprints a query text with FNV-1a.
func hashSQL(s string) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return strconv.FormatUint(h, 16)
}
