package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// The suites share one loaded backend (engine + pools at a tiny scale):
// loading dominates test wall time, and every gateway under test layers
// its own tenants, queues and counters on top, so reuse is safe — the
// engine's read path is concurrent by design.
var (
	backendOnce sync.Once
	backendVal  *Backend
	backendErr  error
)

// testScale keeps per-query simulated work small enough for CI's single
// core (matches the autopilot suite's tiny fixtures).
const testScale = 0.0001

func backendConfig() Config {
	c := Config{
		System: "B",
		Scale:  testScale,
		Seed:   7,
		Pool:   12,
		Tenants: []TenantConfig{
			{Name: "seed", APIKey: "seed-key", Families: []string{"NREF2J", "NREF3J"}},
		},
	}
	c.setDefaults()
	return c
}

func sharedBackend(t *testing.T) *Backend {
	t.Helper()
	backendOnce.Do(func() {
		backendVal, backendErr = BuildBackend(backendConfig())
	})
	if backendErr != nil {
		t.Fatalf("build backend: %v", backendErr)
	}
	return backendVal
}

// threeTenants is the default test topology: two single-family tenants
// plus one with both families.
func threeTenants() []TenantConfig {
	return []TenantConfig{
		{Name: "alpha", APIKey: "alpha-key", Families: []string{"NREF2J"}, MaxQueue: 32, MaxConcurrency: 2, Window: 8},
		{Name: "beta", APIKey: "beta-key", Families: []string{"NREF3J"}, MaxQueue: 32, MaxConcurrency: 2, Window: 8},
		{Name: "gamma", APIKey: "gamma-key", Families: []string{"NREF2J", "NREF3J"}, MaxQueue: 32, MaxConcurrency: 2, Window: 8},
	}
}

func testConfig(tenants ...TenantConfig) Config {
	if len(tenants) == 0 {
		tenants = threeTenants()
	}
	return Config{
		System:  "B",
		Scale:   testScale,
		Seed:    7,
		Pool:    12,
		Tenants: tenants,
	}
}

// newTestGateway serves cfg over the shared backend on an httptest
// server (in-process transport, no real sockets) and tears both down in
// the right order: gateway drain first, listener second.
func newTestGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(Options{Config: cfg, Backend: sharedBackend(t)})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := g.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	ts := httptest.NewServer(g)
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		if err := g.Shutdown(sctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return g, ts
}

// postQuery issues one /v1/query request and decodes the JSON body.
func postQuery(t *testing.T, baseURL, key string, seq int64, family, sqlText string) (int, map[string]any, http.Header) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"seq": seq, "family": family, "sql": sqlText})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return postRaw(t, baseURL, key, body)
}

func postRaw(t *testing.T, baseURL, key string, body []byte) (int, map[string]any, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	out := make(map[string]any)
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("decode %q: %v", data, err)
		}
	}
	return resp.StatusCode, out, resp.Header
}

// poolQuery fetches one SQL text from a tenant's pool for a family.
func poolQuery(t *testing.T, baseURL, key, family string, idx int) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, baseURL+"/v1/pool?family="+family, nil)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("X-API-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pool %s: status %d", family, resp.StatusCode)
	}
	var out struct {
		Queries []string `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode pool: %v", err)
	}
	if len(out.Queries) == 0 {
		t.Fatalf("pool %s is empty", family)
	}
	return out.Queries[idx%len(out.Queries)]
}

// lastAudit returns the most recent audit record matching the filter.
func lastAudit(t *testing.T, g *Gateway, match func(AuditRecord) bool) AuditRecord {
	t.Helper()
	recs := g.AuditRecords()
	for i := len(recs) - 1; i >= 0; i-- {
		if match(recs[i]) {
			return recs[i]
		}
	}
	t.Fatalf("no matching audit record among %d", len(recs))
	return AuditRecord{}
}
