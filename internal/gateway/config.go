package gateway

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
)

// Config is the gateway's declarative surface: which engine profile
// serves, at what scale, and the tenant directory. It doubles as the
// JSON file format gatewayd loads with -config.
type Config struct {
	// System selects the engine profile ("A", "B" or "C").
	System string `json:"system"`
	// Scale is the data scale factor relative to the paper's databases.
	Scale float64 `json:"scale"`
	// Seed drives data generation and pool sampling.
	Seed int64 `json:"seed"`
	// Pool is the per-family sampled query pool size.
	Pool int `json:"pool"`

	// GlobalInflight caps queries executing on the engine at once across
	// all tenants (the engine-protecting backstop behind the per-tenant
	// concurrency caps).
	GlobalInflight int `json:"global_inflight"`
	// MaxBodyBytes bounds the request body; oversized bodies are
	// rejected with 413 before any parsing.
	MaxBodyBytes int64 `json:"max_body_bytes"`
	// TimeoutSeconds is the per-query simulated timeout.
	TimeoutSeconds float64 `json:"timeout_seconds"`
	// Tuning enables the per-tenant goal tuner: a sliding-window goal
	// violation on any tenant triggers a recommender run and an
	// incremental engine transition while traffic keeps flowing.
	Tuning bool `json:"tuning"`

	// Shards > 1 serves queries through a partition-parallel shard
	// cluster over the engine (0 or 1 = unsharded direct execution).
	Shards int `json:"shards,omitempty"`
	// ShardMode picks the partitioning scheme: "hash" (default) or
	// "range".
	ShardMode string `json:"shard_mode,omitempty"`
	// ShardPool is the worker fan-out per partition-parallel query.
	ShardPool int `json:"shard_pool,omitempty"`

	// Autoscale starts the elastic autoscaler: sliding windows of
	// completed queries are graded against AutoscaleGoal and fed to the
	// scaling rules, which may reshard the cluster or resize its pool.
	// Implies a cluster even when Shards <= 1 (it starts at one shard).
	Autoscale bool `json:"autoscale,omitempty"`
	// AutoscaleDryRun audits every proposal without mutating anything.
	AutoscaleDryRun bool `json:"autoscale_dry_run,omitempty"`
	// AutoscaleWindow is how many completed queries form one metrics
	// window.
	AutoscaleWindow int `json:"autoscale_window,omitempty"`
	// AutoscaleTarget is the mean-latency target (simulated seconds) the
	// default scaling rules aim for.
	AutoscaleTarget float64 `json:"autoscale_target,omitempty"`
	// AutoscaleCooldown is the updater's hysteresis window: after a scale
	// action, proposals within this many windows are held (audited as
	// "cooldown") instead of applied, damping oscillation while the
	// cluster settles. Zero disables the cooldown.
	AutoscaleCooldown int `json:"autoscale_cooldown,omitempty"`
	// AutoscaleGoal is the goal curve windows are graded against, in
	// core.ParseGoal format; empty means the paper's Example 2 goal.
	AutoscaleGoal string `json:"autoscale_goal,omitempty"`
	// MinShards/MaxShards/MinPool/MaxPool bound the autoscaler; a
	// proposal outside the bounds is refused (audited), never clamped.
	// Zero max means unbounded, zero min means 1.
	MinShards int `json:"min_shards,omitempty"`
	MaxShards int `json:"max_shards,omitempty"`
	MinPool   int `json:"min_pool,omitempty"`
	MaxPool   int `json:"max_pool,omitempty"`

	Tenants []TenantConfig `json:"tenants"`
}

// sharded reports whether the gateway serves through a shard cluster.
func (c *Config) sharded() bool { return c.Shards > 1 || c.Autoscale }

// TenantConfig declares one tenant: identity, capabilities and QoS goal.
type TenantConfig struct {
	Name   string `json:"name"`
	APIKey string `json:"api_key"`

	// Families lists the query families this tenant may label requests
	// with and fetch pools for. Every tenant of one gateway must map to
	// the same database (one engine serves one database).
	Families []string `json:"families"`
	// Relations, when non-empty, is a relation allowlist: every table a
	// query touches (FROM clause and IN-subqueries) must be listed, or
	// the request is rejected with 403 capability-violation.
	Relations []string `json:"relations,omitempty"`

	// MaxQueue bounds this tenant's admission queue; an arriving query
	// that finds it full is rejected with 429 + Retry-After.
	MaxQueue int `json:"max_queue"`
	// MaxConcurrency is the number of this tenant's queries executing at
	// once (the tenant's pump count).
	MaxConcurrency int `json:"max_concurrency"`
	// MaxRows caps rows echoed in responses (the full row count is
	// always reported).
	MaxRows int `json:"max_rows"`

	// Goal is the tenant's QoS curve G(x) in core.ParseGoal format
	// ("60:0.50,400:0.95"); empty means the paper's Example 2 goal.
	Goal string `json:"goal,omitempty"`
	// Window is the sliding observation window (completed queries) the
	// tuner judges the goal over.
	Window int `json:"window"`
}

// setDefaults fills the zero values.
func (c *Config) setDefaults() {
	if c.System == "" {
		c.System = "B"
	}
	if c.Scale == 0 {
		c.Scale = 0.0002
	}
	if c.Pool == 0 {
		c.Pool = 30
	}
	if c.GlobalInflight == 0 {
		c.GlobalInflight = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 10
	}
	if c.TimeoutSeconds == 0 {
		c.TimeoutSeconds = core.DefaultTimeout
	}
	if c.sharded() {
		if c.ShardMode == "" {
			c.ShardMode = "hash"
		}
		if c.ShardPool == 0 {
			c.ShardPool = 4
		}
	}
	if c.Autoscale {
		if c.AutoscaleWindow == 0 {
			c.AutoscaleWindow = 32
		}
		if c.AutoscaleTarget == 0 {
			c.AutoscaleTarget = 60
		}
		if c.MaxShards == 0 {
			c.MaxShards = 8
		}
		if c.MaxPool == 0 {
			c.MaxPool = 16
		}
	}
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.MaxQueue == 0 {
			t.MaxQueue = 16
		}
		if t.MaxConcurrency == 0 {
			t.MaxConcurrency = 2
		}
		if t.MaxRows == 0 {
			t.MaxRows = 8
		}
		if t.Window == 0 {
			t.Window = 32
		}
	}
}

// Validate checks the config and returns the database every tenant's
// families live on.
func (c *Config) Validate() (string, error) {
	switch c.System {
	case "A", "B", "C":
	default:
		return "", fmt.Errorf("gateway: unknown system %q", c.System)
	}
	if len(c.Tenants) == 0 {
		return "", fmt.Errorf("gateway: no tenants configured")
	}
	if c.GlobalInflight < 1 {
		return "", fmt.Errorf("gateway: global_inflight must be positive, got %d", c.GlobalInflight)
	}
	if c.Shards < 0 {
		return "", fmt.Errorf("gateway: shards must be non-negative, got %d", c.Shards)
	}
	switch c.ShardMode {
	case "", "hash", "range":
	default:
		return "", fmt.Errorf("gateway: unknown shard_mode %q (want hash or range)", c.ShardMode)
	}
	if c.sharded() && c.ShardPool < 1 {
		return "", fmt.Errorf("gateway: shard_pool must be positive, got %d", c.ShardPool)
	}
	if c.Autoscale {
		if c.AutoscaleWindow < 1 {
			return "", fmt.Errorf("gateway: autoscale_window must be positive, got %d", c.AutoscaleWindow)
		}
		if c.AutoscaleTarget <= 0 {
			return "", fmt.Errorf("gateway: autoscale_target must be positive, got %v", c.AutoscaleTarget)
		}
		if c.AutoscaleCooldown < 0 {
			return "", fmt.Errorf("gateway: autoscale_cooldown must not be negative, got %d", c.AutoscaleCooldown)
		}
		if c.MaxShards > 0 && c.MinShards > c.MaxShards {
			return "", fmt.Errorf("gateway: min_shards %d exceeds max_shards %d", c.MinShards, c.MaxShards)
		}
		if c.MaxPool > 0 && c.MinPool > c.MaxPool {
			return "", fmt.Errorf("gateway: min_pool %d exceeds max_pool %d", c.MinPool, c.MaxPool)
		}
		if c.AutoscaleGoal != "" {
			if _, err := core.ParseGoal(c.AutoscaleGoal); err != nil {
				return "", fmt.Errorf("gateway: autoscale_goal: %w", err)
			}
		}
	}
	db := ""
	names := make(map[string]bool, len(c.Tenants))
	keys := make(map[string]bool, len(c.Tenants))
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.Name == "" {
			return "", fmt.Errorf("gateway: tenant %d has no name", i)
		}
		if names[t.Name] {
			return "", fmt.Errorf("gateway: duplicate tenant name %q", t.Name)
		}
		names[t.Name] = true
		if t.APIKey == "" {
			return "", fmt.Errorf("gateway: tenant %q has no api_key", t.Name)
		}
		if keys[t.APIKey] {
			return "", fmt.Errorf("gateway: tenant %q reuses another tenant's api_key", t.Name)
		}
		keys[t.APIKey] = true
		if len(t.Families) == 0 {
			return "", fmt.Errorf("gateway: tenant %q has no families", t.Name)
		}
		for _, f := range t.Families {
			d, err := bench.DBOfFamily(f)
			if err != nil {
				return "", fmt.Errorf("gateway: tenant %q: %w", t.Name, err)
			}
			if db == "" {
				db = d
			} else if db != d {
				return "", fmt.Errorf("gateway: tenant %q family %s lives on %s but the gateway serves %s; one engine serves one database", t.Name, f, d, db)
			}
		}
		if t.MaxQueue < 0 || t.MaxConcurrency < 1 || t.MaxRows < 0 || t.Window < 1 {
			return "", fmt.Errorf("gateway: tenant %q has nonsensical caps (max_queue %d, max_concurrency %d, max_rows %d, window %d)",
				t.Name, t.MaxQueue, t.MaxConcurrency, t.MaxRows, t.Window)
		}
		if t.Goal != "" {
			if _, err := core.ParseGoal(t.Goal); err != nil {
				return "", fmt.Errorf("gateway: tenant %q goal: %w", t.Name, err)
			}
		}
	}
	return db, nil
}

// autoscaleGoalOf resolves the autoscaler's grading goal.
func (c *Config) autoscaleGoalOf() core.Goal {
	if c.AutoscaleGoal == "" {
		return core.Example2Goal()
	}
	g, err := core.ParseGoal(c.AutoscaleGoal)
	if err != nil {
		// Validate rejected this earlier; fall back rather than panic.
		return core.Example2Goal()
	}
	return g
}

// goalOf resolves a tenant's goal curve.
//
// conflint:pure — goal resolution runs on the serve path for every
// admitted query's grading; it must read the tenant config, never
// rewrite it (per-tenant tuning goes through the config swap).
func (t *TenantConfig) goalOf() core.Goal {
	if t.Goal == "" {
		return core.Example2Goal()
	}
	g, err := core.ParseGoal(t.Goal)
	if err != nil {
		// Validate rejected this earlier; an unvalidated config falls
		// back to the paper's goal rather than panicking mid-serve.
		return core.Example2Goal()
	}
	g.Name = t.Name
	return g
}

// allowSet lowers the relation allowlist into a set (nil = allow all).
func (t *TenantConfig) allowSet() map[string]bool {
	if len(t.Relations) == 0 {
		return nil
	}
	out := make(map[string]bool, len(t.Relations))
	for _, r := range t.Relations {
		out[strings.ToLower(r)] = true
	}
	return out
}

// familySet lowers the family list into a set.
func (t *TenantConfig) familySet() map[string]bool {
	out := make(map[string]bool, len(t.Families))
	for _, f := range t.Families {
		out[f] = true
	}
	return out
}

// Normalize re-applies defaults and validation after programmatic edits
// (gatewayd's flag overrides edit a loaded config).
func (c *Config) Normalize() error {
	c.setDefaults()
	_, err := c.Validate()
	return err
}

// LoadConfig reads and validates a JSON config file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("gateway: %s: %w", path, err)
	}
	c.setDefaults()
	if _, err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
