package gateway

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
)

// Config is the gateway's declarative surface: which engine profile
// serves, at what scale, and the tenant directory. It doubles as the
// JSON file format gatewayd loads with -config.
type Config struct {
	// System selects the engine profile ("A", "B" or "C").
	System string `json:"system"`
	// Scale is the data scale factor relative to the paper's databases.
	Scale float64 `json:"scale"`
	// Seed drives data generation and pool sampling.
	Seed int64 `json:"seed"`
	// Pool is the per-family sampled query pool size.
	Pool int `json:"pool"`

	// GlobalInflight caps queries executing on the engine at once across
	// all tenants (the engine-protecting backstop behind the per-tenant
	// concurrency caps).
	GlobalInflight int `json:"global_inflight"`
	// MaxBodyBytes bounds the request body; oversized bodies are
	// rejected with 413 before any parsing.
	MaxBodyBytes int64 `json:"max_body_bytes"`
	// TimeoutSeconds is the per-query simulated timeout.
	TimeoutSeconds float64 `json:"timeout_seconds"`
	// Tuning enables the per-tenant goal tuner: a sliding-window goal
	// violation on any tenant triggers a recommender run and an
	// incremental engine transition while traffic keeps flowing.
	Tuning bool `json:"tuning"`

	Tenants []TenantConfig `json:"tenants"`
}

// TenantConfig declares one tenant: identity, capabilities and QoS goal.
type TenantConfig struct {
	Name   string `json:"name"`
	APIKey string `json:"api_key"`

	// Families lists the query families this tenant may label requests
	// with and fetch pools for. Every tenant of one gateway must map to
	// the same database (one engine serves one database).
	Families []string `json:"families"`
	// Relations, when non-empty, is a relation allowlist: every table a
	// query touches (FROM clause and IN-subqueries) must be listed, or
	// the request is rejected with 403 capability-violation.
	Relations []string `json:"relations,omitempty"`

	// MaxQueue bounds this tenant's admission queue; an arriving query
	// that finds it full is rejected with 429 + Retry-After.
	MaxQueue int `json:"max_queue"`
	// MaxConcurrency is the number of this tenant's queries executing at
	// once (the tenant's pump count).
	MaxConcurrency int `json:"max_concurrency"`
	// MaxRows caps rows echoed in responses (the full row count is
	// always reported).
	MaxRows int `json:"max_rows"`

	// Goal is the tenant's QoS curve G(x) in core.ParseGoal format
	// ("60:0.50,400:0.95"); empty means the paper's Example 2 goal.
	Goal string `json:"goal,omitempty"`
	// Window is the sliding observation window (completed queries) the
	// tuner judges the goal over.
	Window int `json:"window"`
}

// setDefaults fills the zero values.
func (c *Config) setDefaults() {
	if c.System == "" {
		c.System = "B"
	}
	if c.Scale == 0 {
		c.Scale = 0.0002
	}
	if c.Pool == 0 {
		c.Pool = 30
	}
	if c.GlobalInflight == 0 {
		c.GlobalInflight = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 10
	}
	if c.TimeoutSeconds == 0 {
		c.TimeoutSeconds = core.DefaultTimeout
	}
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.MaxQueue == 0 {
			t.MaxQueue = 16
		}
		if t.MaxConcurrency == 0 {
			t.MaxConcurrency = 2
		}
		if t.MaxRows == 0 {
			t.MaxRows = 8
		}
		if t.Window == 0 {
			t.Window = 32
		}
	}
}

// Validate checks the config and returns the database every tenant's
// families live on.
func (c *Config) Validate() (string, error) {
	switch c.System {
	case "A", "B", "C":
	default:
		return "", fmt.Errorf("gateway: unknown system %q", c.System)
	}
	if len(c.Tenants) == 0 {
		return "", fmt.Errorf("gateway: no tenants configured")
	}
	if c.GlobalInflight < 1 {
		return "", fmt.Errorf("gateway: global_inflight must be positive, got %d", c.GlobalInflight)
	}
	db := ""
	names := make(map[string]bool, len(c.Tenants))
	keys := make(map[string]bool, len(c.Tenants))
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.Name == "" {
			return "", fmt.Errorf("gateway: tenant %d has no name", i)
		}
		if names[t.Name] {
			return "", fmt.Errorf("gateway: duplicate tenant name %q", t.Name)
		}
		names[t.Name] = true
		if t.APIKey == "" {
			return "", fmt.Errorf("gateway: tenant %q has no api_key", t.Name)
		}
		if keys[t.APIKey] {
			return "", fmt.Errorf("gateway: tenant %q reuses another tenant's api_key", t.Name)
		}
		keys[t.APIKey] = true
		if len(t.Families) == 0 {
			return "", fmt.Errorf("gateway: tenant %q has no families", t.Name)
		}
		for _, f := range t.Families {
			d, err := bench.DBOfFamily(f)
			if err != nil {
				return "", fmt.Errorf("gateway: tenant %q: %w", t.Name, err)
			}
			if db == "" {
				db = d
			} else if db != d {
				return "", fmt.Errorf("gateway: tenant %q family %s lives on %s but the gateway serves %s; one engine serves one database", t.Name, f, d, db)
			}
		}
		if t.MaxQueue < 0 || t.MaxConcurrency < 1 || t.MaxRows < 0 || t.Window < 1 {
			return "", fmt.Errorf("gateway: tenant %q has nonsensical caps (max_queue %d, max_concurrency %d, max_rows %d, window %d)",
				t.Name, t.MaxQueue, t.MaxConcurrency, t.MaxRows, t.Window)
		}
		if t.Goal != "" {
			if _, err := core.ParseGoal(t.Goal); err != nil {
				return "", fmt.Errorf("gateway: tenant %q goal: %w", t.Name, err)
			}
		}
	}
	return db, nil
}

// goalOf resolves a tenant's goal curve.
func (t *TenantConfig) goalOf() core.Goal {
	if t.Goal == "" {
		return core.Example2Goal()
	}
	g, err := core.ParseGoal(t.Goal)
	if err != nil {
		// Validate rejected this earlier; an unvalidated config falls
		// back to the paper's goal rather than panicking mid-serve.
		return core.Example2Goal()
	}
	g.Name = t.Name
	return g
}

// allowSet lowers the relation allowlist into a set (nil = allow all).
func (t *TenantConfig) allowSet() map[string]bool {
	if len(t.Relations) == 0 {
		return nil
	}
	out := make(map[string]bool, len(t.Relations))
	for _, r := range t.Relations {
		out[strings.ToLower(r)] = true
	}
	return out
}

// familySet lowers the family list into a set.
func (t *TenantConfig) familySet() map[string]bool {
	out := make(map[string]bool, len(t.Families))
	for _, f := range t.Families {
		out[f] = true
	}
	return out
}

// LoadConfig reads and validates a JSON config file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("gateway: %s: %w", path, err)
	}
	c.setDefaults()
	if _, err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
