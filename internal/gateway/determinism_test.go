// Determinism: a seeded sync fleet must yield byte-identical per-tenant
// audit dumps and goal reports across repeated runs and across client
// parallelism N ∈ {1, 4, 16}. Sequence numbers come from the schedule,
// goal levels from order-insensitive cumulative counters, and all timing
// is simulated — so the worker interleaving cannot leak into the bytes.
package gateway

import (
	"testing"

	"repro/internal/core"
)

// runSyncFleet drives one fresh gateway with the fixed seeded schedule
// and returns the deterministic artifacts.
func runSyncFleet(t *testing.T, workers int) (dumps map[string]string, goalReport string) {
	t.Helper()
	cfg := testConfig() // tuning off: the determinism contract fixes the configuration
	g, ts := newTestGateway(t, cfg)
	var tenants []FleetTenant
	for _, tc := range cfg.Tenants {
		tenants = append(tenants, FleetTenant{Name: tc.Name, APIKey: tc.APIKey, Families: tc.Families})
	}
	fleet, err := NewFleet(FleetOptions{
		BaseURL:           ts.URL,
		Tenants:           tenants,
		Sessions:          24,
		QueriesPerSession: 1,
		Workers:           workers,
		Seed:              11,
		Sync:              true,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	rep, err := fleet.Run()
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	// Per-tenant caps exceed the worker count, so admission decisions
	// are schedule-determined: nothing may bounce.
	if rep.Rejected != 0 || rep.Errors != 0 {
		t.Fatalf("sync fleet rejected %d, errors %d — caps must exceed workers", rep.Rejected, rep.Errors)
	}
	if rep.Accepted != int64(rep.Requests) {
		t.Fatalf("accepted %d of %d", rep.Accepted, rep.Requests)
	}
	dumps = make(map[string]string, len(tenants))
	for _, ft := range tenants {
		dumps[ft.Name] = string(g.AuditDumpTenant(ft.Name))
		if dumps[ft.Name] == "" {
			t.Fatalf("tenant %s has an empty audit dump", ft.Name)
		}
	}
	return dumps, g.GoalReport()
}

func TestDeterminismAcrossRunsAndParallelism(t *testing.T) {
	baseDumps, baseReport := runSyncFleet(t, 4)

	// Same seed, same workers: byte-identical artifacts.
	repDumps, repReport := runSyncFleet(t, 4)
	if repReport != baseReport {
		t.Errorf("goal report differs across identical runs:\n--- run1\n%s--- run2\n%s", baseReport, repReport)
	}
	for name, dump := range baseDumps {
		if repDumps[name] != dump {
			t.Errorf("tenant %s audit dump differs across identical runs", name)
		}
	}

	// Same seed, different client parallelism: still byte-identical.
	for _, workers := range []int{1, 16} {
		dumps, report := runSyncFleet(t, workers)
		if report != baseReport {
			t.Errorf("goal report differs at %d workers:\n--- base(4)\n%s--- %d\n%s", workers, baseReport, workers, report)
		}
		for name, dump := range baseDumps {
			if dumps[name] != dump {
				t.Errorf("tenant %s audit dump differs at %d workers", name, workers)
			}
		}
	}
}

// TestGoalLevelMatchesCFCSatisfaction pins the cumulative counter
// shortcut to the paper-facing definition: the per-step counters must
// grade exactly like core.Goal.Satisfaction over the cumulative CFC.
func TestGoalLevelMatchesCFCSatisfaction(t *testing.T) {
	tc := TenantConfig{Name: "x", APIKey: "k", Families: []string{"NREF2J"}, Goal: "10:0.25,60:0.50,400:0.95"}
	cfg := Config{Tenants: []TenantConfig{tc}}
	cfg.setDefaults()
	st := newTenantState(cfg.Tenants[0])
	times := []float64{1, 5, 9, 10, 11, 59, 60, 61, 200, 399, 400, 500, 1200}
	for _, s := range times {
		st.noteCompleted("q", s, false, false)
	}
	st.noteCompleted("q", 0, true, false) // one timeout joins the denominator

	st.mu.Lock()
	got := st.goalLevelLocked()
	st.mu.Unlock()

	goal, err := core.ParseGoal(tc.Goal)
	if err != nil {
		t.Fatalf("parse goal: %v", err)
	}
	ms := make([]core.Measure, 0, len(times)+1)
	for _, s := range times {
		ms = append(ms, core.Measure{Seconds: s})
	}
	ms = append(ms, core.Measure{TimedOut: true})
	want := goal.Satisfaction(core.NewCFC(ms, 0))
	if got != want {
		t.Errorf("goal level %v, want %v (CFC reference)", got, want)
	}
}
