package gateway

import (
	"testing"

	"repro/internal/core"
)

// TestAutoscalerWindowReportBridge pins the satellite contract from the
// elastic loop rework: the gateway's autoscaler grades each closed
// window into a full autopilot.WindowReport and the metrics handed to
// the scaling rules are exactly that report lowered through
// ScaleMetrics — goal level, mean latency, and window number all carry
// over from the report, and the queue depth is the gateway's.
func TestAutoscalerWindowReportBridge(t *testing.T) {
	g := &Gateway{}
	as := &autoscaler{g: g, goal: core.Example2Goal()}
	for i := 0; i < 8; i++ {
		as.entries = append(as.entries, windowEntry{seconds: float64(i+1) * 0.1})
	}
	as.entries = append(as.entries, windowEntry{seconds: 30, timedOut: true})

	w := as.closeWindowLocked()

	rep := as.lastReport
	if rep.Window != 1 || rep.Queries != 9 || rep.Timeouts != 1 {
		t.Fatalf("report header = window %d, queries %d, timeouts %d; want 1, 9, 1", rep.Window, rep.Queries, rep.Timeouts)
	}
	if rep.MeanSeconds <= 0 || rep.P50 <= 0 || rep.P95 < rep.P50 {
		t.Errorf("report quantiles look unfilled: %+v", rep)
	}

	// The lowered metrics must be the report's ScaleMetrics, field for
	// field — the one code path shared with the autopilot's batch loop.
	want := rep.ScaleMetrics(g.queueDepth())
	if w != want {
		t.Errorf("closeWindowLocked() = %+v, want report.ScaleMetrics = %+v", w, want)
	}
	if w.GoalLevel != rep.Satisfaction {
		t.Errorf("GoalLevel %v does not carry the report's Satisfaction %v", w.GoalLevel, rep.Satisfaction)
	}
	if w.MeanSeconds != rep.MeanSeconds || w.Window != rep.Window || w.Queries != rep.Queries {
		t.Errorf("metrics %+v disagree with report %+v", w, rep)
	}

	// Closing a second window advances the sequence number.
	as.entries = append(as.entries, windowEntry{seconds: 0.2})
	if w2 := as.closeWindowLocked(); w2.Window != 2 {
		t.Errorf("second window number = %d, want 2", w2.Window)
	}
}
