// Package conf defines physical database configurations: sets of indexes
// and materialized views. Configurations are the objects the paper's
// framework reasons about — the initial configuration P (primary-key
// indexes only), the reference configuration 1C (every indexable column
// gets a single-column index), and the recommended configurations R
// produced by the recommenders.
package conf

import (
	"fmt"
	"sort"
	"strings"
)

// IndexDef declares an index over a base table or a materialized view.
type IndexDef struct {
	// Table is the name of the base table or materialized view indexed.
	Table string
	// Columns are the key columns, in order. len(Columns) is the index
	// width reported in the paper's Tables 2 and 3.
	Columns []string
	// Unique marks primary-key indexes.
	Unique bool
	// Auto marks indexes created automatically for primary keys; these
	// belong to every configuration and are not charged to the budget.
	Auto bool
}

// Name returns a deterministic identifier for the index.
func (d IndexDef) Name() string {
	return "ix_" + d.Table + "_" + strings.Join(d.Columns, "_")
}

// Equal reports whether two definitions describe the same index.
func (d IndexDef) Equal(o IndexDef) bool {
	if !strings.EqualFold(d.Table, o.Table) || len(d.Columns) != len(o.Columns) {
		return false
	}
	for i := range d.Columns {
		if !strings.EqualFold(d.Columns[i], o.Columns[i]) {
			return false
		}
	}
	return true
}

func (d IndexDef) String() string {
	u := ""
	if d.Unique {
		u = "UNIQUE "
	}
	return fmt.Sprintf("%sINDEX %s ON %s(%s)", u, d.Name(), d.Table, strings.Join(d.Columns, ", "))
}

// ViewDef declares a materialized view by its defining SELECT.
type ViewDef struct {
	Name string
	// SQL is the defining query, in the subset parsed by internal/sql.
	// The engine materializes the view by executing it.
	SQL string
	// BaseTables are the base tables the view joins, recorded for
	// reporting (paper Table 3 groups views by their base-table joins).
	BaseTables []string
}

func (v ViewDef) String() string {
	return fmt.Sprintf("MATERIALIZED VIEW %s AS %s", v.Name, v.SQL)
}

// Configuration is a named set of indexes and materialized views.
type Configuration struct {
	Name    string
	Indexes []IndexDef
	Views   []ViewDef
}

// Clone returns a deep copy.
func (c Configuration) Clone() Configuration {
	out := Configuration{Name: c.Name}
	out.Indexes = make([]IndexDef, len(c.Indexes))
	for i, d := range c.Indexes {
		d.Columns = append([]string(nil), d.Columns...)
		out.Indexes[i] = d
	}
	out.Views = make([]ViewDef, len(c.Views))
	for i, v := range c.Views {
		v.BaseTables = append([]string(nil), v.BaseTables...)
		out.Views[i] = v
	}
	return out
}

// HasIndex reports whether the configuration already contains the index.
func (c Configuration) HasIndex(d IndexDef) bool {
	for _, e := range c.Indexes {
		if e.Equal(d) {
			return true
		}
	}
	return false
}

// AddIndex appends the index if not already present and reports whether
// it was added.
func (c *Configuration) AddIndex(d IndexDef) bool {
	if c.HasIndex(d) {
		return false
	}
	c.Indexes = append(c.Indexes, d)
	return true
}

// HasView reports whether a view with the given name exists.
func (c Configuration) HasView(name string) bool {
	for _, v := range c.Views {
		if strings.EqualFold(v.Name, name) {
			return true
		}
	}
	return false
}

// View returns the named view definition, or nil.
func (c Configuration) View(name string) *ViewDef {
	for i := range c.Views {
		if strings.EqualFold(c.Views[i].Name, name) {
			return &c.Views[i]
		}
	}
	return nil
}

// WidthCounts returns, per table, the number of indexes of each key width
// (1..maxWidth columns; wider indexes are counted in the last bucket).
// Auto (primary key) indexes are excluded: the paper's Tables 2 and 3
// report only recommended/added indexes.
func (c Configuration) WidthCounts(maxWidth int) map[string][]int {
	out := make(map[string][]int)
	for _, d := range c.Indexes {
		if d.Auto {
			continue
		}
		w := len(d.Columns)
		if w > maxWidth {
			w = maxWidth
		}
		row := out[d.Table]
		if row == nil {
			row = make([]int, maxWidth)
			out[d.Table] = row
		}
		row[w-1]++
	}
	return out
}

// SortedTables returns the table names appearing in WidthCounts, sorted.
func SortedTables(m map[string][]int) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
