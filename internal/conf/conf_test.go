package conf

import (
	"strings"
	"testing"
)

func TestIndexDefEqual(t *testing.T) {
	a := IndexDef{Table: "T", Columns: []string{"a", "b"}}
	cases := []struct {
		b    IndexDef
		want bool
	}{
		{IndexDef{Table: "t", Columns: []string{"A", "B"}}, true}, // case-insensitive
		{IndexDef{Table: "t", Columns: []string{"a"}}, false},
		{IndexDef{Table: "t", Columns: []string{"b", "a"}}, false}, // order matters
		{IndexDef{Table: "u", Columns: []string{"a", "b"}}, false},
	}
	for _, c := range cases {
		if got := a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v, %v) = %v", a, c.b, got)
		}
	}
}

func TestAddIndexDedups(t *testing.T) {
	var c Configuration
	d := IndexDef{Table: "t", Columns: []string{"x"}}
	if !c.AddIndex(d) {
		t.Fatal("first add should succeed")
	}
	if c.AddIndex(IndexDef{Table: "T", Columns: []string{"X"}}) {
		t.Fatal("duplicate add should be rejected")
	}
	if len(c.Indexes) != 1 {
		t.Fatalf("indexes = %d", len(c.Indexes))
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := Configuration{
		Name:    "orig",
		Indexes: []IndexDef{{Table: "t", Columns: []string{"a"}}},
		Views:   []ViewDef{{Name: "v", SQL: "SELECT a FROM t", BaseTables: []string{"t"}}},
	}
	cl := c.Clone()
	cl.Indexes[0].Columns[0] = "z"
	cl.Views[0].BaseTables[0] = "z"
	if c.Indexes[0].Columns[0] != "a" || c.Views[0].BaseTables[0] != "t" {
		t.Error("Clone must not share backing arrays")
	}
}

func TestWidthCountsExcludesAuto(t *testing.T) {
	c := Configuration{Indexes: []IndexDef{
		{Table: "t", Columns: []string{"pk"}, Auto: true, Unique: true},
		{Table: "t", Columns: []string{"a"}},
		{Table: "t", Columns: []string{"a", "b"}},
		{Table: "t", Columns: []string{"a", "b", "c", "d", "e"}}, // wider than max
		{Table: "u", Columns: []string{"x", "y", "z"}},
	}}
	counts := c.WidthCounts(4)
	if got := counts["t"]; got[0] != 1 || got[1] != 1 || got[3] != 1 {
		t.Errorf("t counts = %v", got)
	}
	if got := counts["u"]; got[2] != 1 {
		t.Errorf("u counts = %v", got)
	}
	names := SortedTables(counts)
	if len(names) != 2 || names[0] != "t" || names[1] != "u" {
		t.Errorf("sorted tables = %v", names)
	}
}

func TestViewsLookup(t *testing.T) {
	c := Configuration{Views: []ViewDef{{Name: "MV_a"}}}
	if !c.HasView("mv_A") {
		t.Error("HasView should be case-insensitive")
	}
	if v := c.View("mv_a"); v == nil || v.Name != "MV_a" {
		t.Errorf("View lookup = %v", v)
	}
	if c.View("nope") != nil {
		t.Error("missing view should return nil")
	}
}

func TestNamesAndStrings(t *testing.T) {
	d := IndexDef{Table: "orders", Columns: []string{"o_custkey", "o_orderdate"}, Unique: true}
	if d.Name() != "ix_orders_o_custkey_o_orderdate" {
		t.Errorf("Name = %s", d.Name())
	}
	if !strings.Contains(d.String(), "UNIQUE INDEX") {
		t.Errorf("String = %s", d.String())
	}
	v := ViewDef{Name: "mv1", SQL: "SELECT 1"}
	if !strings.Contains(v.String(), "MATERIALIZED VIEW mv1") {
		t.Errorf("view String = %s", v.String())
	}
}
