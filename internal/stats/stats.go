// Package stats implements the statistics the optimizer relies on:
// per-table row counts, per-column distinct counts, most-common-value
// lists, and equi-depth histograms.
//
// It also implements the derivation of hypothetical statistics for
// configurations that do not exist yet — the "what-if" path that the
// paper's Section 5 identifies as the weak link of commercial
// recommenders. Hypothetical derivation is necessarily cruder than
// collection (it cannot observe the data through the hypothetical index),
// and that gap is modeled explicitly via the independence assumption on
// composite-key distinct counts and a clustering assumption parameter.
package stats

import (
	"math"
	"sort"

	"repro/internal/storage"
	"repro/internal/val"
)

// maxMCV is the number of most-common values tracked per column.
const maxMCV = 50

// histBuckets is the number of equi-depth histogram buckets per column.
const histBuckets = 32

// ValueCount is a value with its frequency.
type ValueCount struct {
	Value val.Value
	Count int64
}

// byValue and byCountDesc are named sort orders for ValueCounts. The
// per-column loop in Collect sorts once per column; named sort.Interface
// implementations keep it free of per-iteration comparator closures.
type byValue []ValueCount

func (s byValue) Len() int           { return len(s) }
func (s byValue) Swap(a, b int)      { s[a], s[b] = s[b], s[a] }
func (s byValue) Less(a, b int) bool { return val.Compare(s[a].Value, s[b].Value) < 0 }

// byCountDesc ranks most-frequent first, ties by value order.
type byCountDesc []ValueCount

func (s byCountDesc) Len() int      { return len(s) }
func (s byCountDesc) Swap(a, b int) { s[a], s[b] = s[b], s[a] }
func (s byCountDesc) Less(a, b int) bool {
	if s[a].Count != s[b].Count {
		return s[a].Count > s[b].Count
	}
	return val.Compare(s[a].Value, s[b].Value) < 0
}

// Bucket is one equi-depth histogram bucket: values v with
// Lo < v <= Hi (the first bucket includes Lo).
type Bucket struct {
	Lo, Hi   val.Value
	Count    int64
	Distinct int64
}

// ColumnStats summarizes one column.
type ColumnStats struct {
	NDV   int64 // number of distinct non-null values
	Nulls int64
	Min   val.Value
	Max   val.Value
	// MCV holds the most common values, descending by frequency.
	MCV []ValueCount
	// mcvTotal is the total count covered by MCV.
	mcvTotal int64
	// Hist is an equi-depth histogram over all non-null values.
	Hist []Bucket
}

// TableStats summarizes one table.
type TableStats struct {
	Rows  int64
	Pages int64
	Cols  []ColumnStats
}

// Collect builds full statistics for the heap with a single scan per
// column. It is the RUNSTATS of the benchmark engine.
func Collect(h *storage.Heap) *TableStats {
	ncols := len(h.Table.Columns)
	ts := &TableStats{Rows: h.NumRows(), Pages: h.Pages(), Cols: make([]ColumnStats, ncols)}

	counts := make([]map[string]*ValueCount, ncols)
	for i := range counts {
		counts[i] = make(map[string]*ValueCount)
	}
	h.Scan(nil, func(_ storage.RowID, r val.Row) bool {
		for i, v := range r {
			if v.IsNull() {
				ts.Cols[i].Nulls++
				continue
			}
			k := val.Row{v}.Key()
			if vc := counts[i][k]; vc != nil {
				vc.Count++
			} else {
				counts[i][k] = &ValueCount{Value: v, Count: 1}
			}
		}
		return true
	})

	for i := range ts.Cols {
		cs := &ts.Cols[i]
		vcs := make([]ValueCount, 0, len(counts[i]))
		for _, vc := range counts[i] {
			vcs = append(vcs, *vc)
		}
		cs.NDV = int64(len(vcs))
		if len(vcs) == 0 {
			continue
		}
		// Min/Max and histogram need value order.
		sort.Sort(byValue(vcs))
		cs.Min = vcs[0].Value
		cs.Max = vcs[len(vcs)-1].Value
		cs.Hist = buildEquiDepth(vcs)

		// MCV: top-maxMCV by frequency.
		byFreq := append([]ValueCount(nil), vcs...)
		sort.Sort(byCountDesc(byFreq))
		n := maxMCV
		if n > len(byFreq) {
			n = len(byFreq)
		}
		cs.MCV = byFreq[:n:n]
		for _, vc := range cs.MCV {
			cs.mcvTotal += vc.Count
		}
	}
	return ts
}

// buildEquiDepth partitions the sorted (value, count) list into buckets of
// roughly equal row count.
func buildEquiDepth(sorted []ValueCount) []Bucket {
	var total int64
	for _, vc := range sorted {
		total += vc.Count
	}
	target := total / histBuckets
	if target < 1 {
		target = 1
	}
	out := make([]Bucket, 0, histBuckets)
	cur := Bucket{Lo: sorted[0].Value}
	for _, vc := range sorted {
		cur.Count += vc.Count
		cur.Distinct++
		cur.Hi = vc.Value
		if cur.Count >= target && len(out) < histBuckets-1 {
			out = append(out, cur)
			cur = Bucket{Lo: vc.Value}
		}
	}
	if cur.Count > 0 {
		out = append(out, cur)
	}
	return out
}

// EqSelectivity estimates the fraction of rows with column = v.
func (ts *TableStats) EqSelectivity(col int, v val.Value) float64 {
	if ts.Rows == 0 {
		return 0
	}
	cs := &ts.Cols[col]
	if v.IsNull() || cs.NDV == 0 {
		return 0
	}
	for _, vc := range cs.MCV {
		if val.Equal(vc.Value, v) {
			return float64(vc.Count) / float64(ts.Rows)
		}
	}
	// Outside the MCV list: uniform over the remaining distinct values.
	rest := ts.Rows - cs.mcvTotal - cs.Nulls
	restNDV := cs.NDV - int64(len(cs.MCV))
	if restNDV <= 0 || rest <= 0 {
		// All values are in the MCV list; an unseen constant matches nothing,
		// but stay safely above zero for cost arithmetic.
		return 0.5 / float64(ts.Rows)
	}
	return float64(rest) / float64(restNDV) / float64(ts.Rows)
}

// RangeSelectivity estimates the fraction of rows with column op v, for
// op in < <= > >=.
func (ts *TableStats) RangeSelectivity(col int, op string, v val.Value) float64 {
	if ts.Rows == 0 {
		return 0
	}
	cs := &ts.Cols[col]
	nonNull := ts.Rows - cs.Nulls
	if nonNull <= 0 || len(cs.Hist) == 0 {
		return 0
	}
	// Cumulative rows with value <= v, from the histogram.
	var le float64
	for _, b := range cs.Hist {
		if val.Compare(b.Hi, v) <= 0 {
			le += float64(b.Count)
			continue
		}
		if val.Compare(b.Lo, v) >= 0 && val.Compare(cs.Min, v) != 0 {
			break
		}
		// v falls inside this bucket: interpolate.
		le += float64(b.Count) * bucketFraction(b, v)
		break
	}
	eq := ts.EqSelectivity(col, v) * float64(ts.Rows)
	var rows float64
	switch op {
	case "<=":
		rows = le
	case "<":
		rows = le - eq
	case ">":
		rows = float64(nonNull) - le
	case ">=":
		rows = float64(nonNull) - le + eq
	case "<>":
		rows = float64(nonNull) - eq
	default:
		rows = float64(nonNull) / 3
	}
	if rows < 0 {
		rows = 0
	}
	if rows > float64(nonNull) {
		rows = float64(nonNull)
	}
	return rows / float64(ts.Rows)
}

// bucketFraction estimates how much of bucket b lies at or below v.
func bucketFraction(b Bucket, v val.Value) float64 {
	lo, hi, x := b.Lo.AsFloat(), b.Hi.AsFloat(), v.AsFloat()
	if b.Hi.K == val.KindString {
		// No numeric interpolation for strings: assume half.
		return 0.5
	}
	if hi <= lo {
		return 1
	}
	f := (x - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}

// Selectivity estimates the fraction of rows satisfying column op v.
func (ts *TableStats) Selectivity(col int, op string, v val.Value) float64 {
	switch op {
	case "=":
		return ts.EqSelectivity(col, v)
	default:
		return ts.RangeSelectivity(col, op, v)
	}
}

// CompositeNDV estimates the number of distinct values of a column
// combination under the attribute-independence assumption, damped and
// capped at the row count. This is exactly the kind of derived statistic
// a what-if interface must rely on for hypothetical indexes.
func (ts *TableStats) CompositeNDV(cols []int) int64 {
	if len(cols) == 0 {
		return 1
	}
	ndv := float64(ts.Cols[cols[0]].NDV)
	for _, c := range cols[1:] {
		n := float64(ts.Cols[c].NDV)
		if n < 1 {
			n = 1
		}
		// Damped product: full independence overestimates badly, so each
		// additional column contributes its square root (a common
		// commercial-optimizer heuristic).
		ndv *= math.Sqrt(n)
	}
	if ndv > float64(ts.Rows) {
		ndv = float64(ts.Rows)
	}
	if ndv < 1 {
		ndv = 1
	}
	return int64(ndv)
}

// Provider supplies table statistics by name. The engine implements it
// for actual configurations; hypothetical wrappers implement it for
// what-if calls.
type Provider interface {
	// TableStats returns statistics for the named base table or
	// materialized view, or nil if unknown/not collected.
	TableStats(name string) *TableStats
}
