package stats

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/val"
)

func makeHeap(t *testing.T, n int, valueOf func(i int) val.Row) *storage.Heap {
	t.Helper()
	tab := catalog.MustTable("t",
		[]catalog.Column{
			{Name: "a", Type: catalog.TypeInt, Indexable: true},
			{Name: "b", Type: catalog.TypeString, Indexable: true, AvgWidth: 10},
		},
		[]string{"a"},
	)
	h := storage.NewHeap(tab)
	for i := 0; i < n; i++ {
		if _, err := h.Insert(nil, valueOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestCollectBasics(t *testing.T) {
	h := makeHeap(t, 1000, func(i int) val.Row {
		return val.Row{val.Int(int64(i % 100)), val.String("s")}
	})
	ts := Collect(h)
	if ts.Rows != 1000 {
		t.Fatalf("Rows = %d", ts.Rows)
	}
	if ts.Cols[0].NDV != 100 {
		t.Fatalf("NDV(a) = %d, want 100", ts.Cols[0].NDV)
	}
	if ts.Cols[1].NDV != 1 {
		t.Fatalf("NDV(b) = %d, want 1", ts.Cols[1].NDV)
	}
	if ts.Cols[0].Min.I != 0 || ts.Cols[0].Max.I != 99 {
		t.Fatalf("min/max = %v/%v", ts.Cols[0].Min, ts.Cols[0].Max)
	}
}

func TestNullsTracked(t *testing.T) {
	h := makeHeap(t, 100, func(i int) val.Row {
		if i%4 == 0 {
			return val.Row{val.Null(), val.String("x")}
		}
		return val.Row{val.Int(int64(i)), val.String("x")}
	})
	ts := Collect(h)
	if ts.Cols[0].Nulls != 25 {
		t.Fatalf("Nulls = %d, want 25", ts.Cols[0].Nulls)
	}
	if ts.Cols[0].NDV != 75 {
		t.Fatalf("NDV = %d, want 75", ts.Cols[0].NDV)
	}
	if s := ts.EqSelectivity(0, val.Null()); s != 0 {
		t.Fatalf("NULL selectivity = %v", s)
	}
}

func TestEqSelectivityMCV(t *testing.T) {
	// Value 7 appears 500 times out of 1000; it must be in the MCV list.
	h := makeHeap(t, 1000, func(i int) val.Row {
		v := int64(i)
		if i < 500 {
			v = 7
		}
		return val.Row{val.Int(v), val.String("x")}
	})
	ts := Collect(h)
	if s := ts.EqSelectivity(0, val.Int(7)); s < 0.49 || s > 0.51 {
		t.Fatalf("MCV selectivity = %v, want ~0.5", s)
	}
	// A rare value: roughly 1/1000.
	if s := ts.EqSelectivity(0, val.Int(900)); s <= 0 || s > 0.01 {
		t.Fatalf("rare-value selectivity = %v", s)
	}
}

func TestRangeSelectivityUniform(t *testing.T) {
	h := makeHeap(t, 10_000, func(i int) val.Row {
		return val.Row{val.Int(int64(i)), val.String("x")}
	})
	ts := Collect(h)
	cases := []struct {
		op   string
		v    int64
		want float64
	}{
		{"<", 5000, 0.5},
		{"<=", 2500, 0.25},
		{">", 9000, 0.1},
		{">=", 1000, 0.9},
	}
	for _, c := range cases {
		got := ts.RangeSelectivity(0, c.op, val.Int(c.v))
		if got < c.want-0.05 || got > c.want+0.05 {
			t.Errorf("sel(a %s %d) = %.3f, want ~%.2f", c.op, c.v, got, c.want)
		}
	}
}

// TestSelectivityAccuracy is the property the optimizer depends on:
// estimated equality selectivity is within a small factor of the truth
// for Zipf-like skewed data.
func TestSelectivityAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	freq := make(map[int64]int64)
	h := makeHeap(t, 20_000, func(i int) val.Row {
		// Skew: value v chosen with probability ∝ 1/(v+1).
		v := int64(rng.Intn(100))
		v = v * v / 100 // quadratic skew toward 0..99
		freq[v]++
		return val.Row{val.Int(v), val.String("x")}
	})
	ts := Collect(h)
	for _, v := range []int64{0, 1, 16, 49, 98} {
		if freq[v] == 0 {
			continue
		}
		truth := float64(freq[v]) / 20000
		got := ts.EqSelectivity(0, val.Int(v))
		if got < truth/3 || got > truth*3 {
			t.Errorf("sel(=%d): got %.5f, truth %.5f (off by >3x)", v, got, truth)
		}
	}
}

func TestHistogramInvariants(t *testing.T) {
	h := makeHeap(t, 5000, func(i int) val.Row {
		return val.Row{val.Int(int64(i % 500)), val.String("x")}
	})
	ts := Collect(h)
	var total int64
	hist := ts.Cols[0].Hist
	if len(hist) == 0 {
		t.Fatal("no histogram")
	}
	for i, b := range hist {
		total += b.Count
		if b.Count <= 0 || b.Distinct <= 0 {
			t.Fatalf("bucket %d empty: %+v", i, b)
		}
		if i > 0 && val.Compare(hist[i-1].Hi, b.Hi) > 0 {
			t.Fatalf("bucket bounds not increasing at %d", i)
		}
	}
	if total != 5000 {
		t.Fatalf("histogram covers %d rows, want 5000", total)
	}
}

func TestCompositeNDV(t *testing.T) {
	h := makeHeap(t, 10_000, func(i int) val.Row {
		return val.Row{val.Int(int64(i % 100)), val.String(string(rune('a' + i%26)))}
	})
	ts := Collect(h)
	single := ts.CompositeNDV([]int{0})
	if single != 100 {
		t.Fatalf("single-column composite NDV = %d", single)
	}
	both := ts.CompositeNDV([]int{0, 1})
	if both <= single {
		t.Fatalf("composite NDV %d should exceed single %d", both, single)
	}
	if both > ts.Rows {
		t.Fatalf("composite NDV %d exceeds row count", both)
	}
}

func TestSelectivityBounds(t *testing.T) {
	h := makeHeap(t, 1000, func(i int) val.Row {
		return val.Row{val.Int(int64(i)), val.String("x")}
	})
	ts := Collect(h)
	for _, op := range []string{"=", "<", "<=", ">", ">=", "<>"} {
		for _, v := range []int64{-10, 0, 500, 999, 5000} {
			s := ts.Selectivity(0, op, val.Int(v))
			if s < 0 || s > 1 {
				t.Errorf("sel(a %s %d) = %v out of [0,1]", op, v, s)
			}
		}
	}
}

func TestEmptyTable(t *testing.T) {
	h := makeHeap(t, 0, nil)
	ts := Collect(h)
	if ts.Rows != 0 {
		t.Fatal("rows")
	}
	if s := ts.EqSelectivity(0, val.Int(1)); s != 0 {
		t.Fatalf("selectivity on empty table = %v", s)
	}
	if s := ts.RangeSelectivity(0, "<", val.Int(1)); s != 0 {
		t.Fatalf("range selectivity on empty table = %v", s)
	}
	if ndv := ts.CompositeNDV([]int{0, 1}); ndv != 1 {
		t.Fatalf("composite NDV on empty table = %d", ndv)
	}
}
