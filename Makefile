# Tier-1 verify plus the concurrency gate. `make verify` is what CI runs.

GO ?= go

.PHONY: build test race vet fmtcheck lint lint-fix-hints lint-fix bench fuzz autopilot-smoke whatif-smoke gateway-smoke shard-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run is part of verify: the engine's read path is exercised by
# 32 concurrent goroutines against a config-applying writer (see
# internal/engine/race_test.go), and the autopilot's overlapped
# transitions retune while traffic flows; full-scale golden tests skip
# themselves under the detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; any output fails the check.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# conflint enforces the repo's concurrency & determinism invariants at
# the source level (see "Invariants & static analysis" in README.md),
# including the interprocedural analyzers (epoch, dettaint,
# shutdownpath, and the v4 effect-summary rules pure and readpath).
# Running the full twelve-rule set also arms stale-ignore detection: a
# directive that suppresses nothing is itself a finding. The committed
# baseline is empty — every rule must run clean — and a malformed
# baseline fails the run rather than silently suppressing nothing.
# Per-analyzer wall, fixpoint iteration counts, the fix-planning wall
# and the sequential-vs-parallel lint wall land in BENCH_conflint.json;
# the same findings land in conflint.sarif for code-scanning UIs.
lint:
	$(GO) run ./cmd/conflint -baseline baseline.empty.json \
		-bench-json BENCH_conflint.json -sarif conflint.sarif ./...

# Same run, but each finding prints the offending line and a suggested
# edit.
lint-fix-hints:
	$(GO) run ./cmd/conflint -hints ./...

# Apply every mechanical fix (hotalloc prealloc, errcheck reasoned
# discard, sink labels, stale-ignore deletion), gofmt the touched
# files, then re-lint to prove the fixed findings are gone and no new
# ones appeared. Running it twice is a no-op.
lint-fix:
	$(GO) run ./cmd/conflint -fix ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

fuzz:
	$(GO) test ./internal/sql/ -fuzz=FuzzParse -fuzztime=30s

# A bounded online run: 3 windows with a mixture drift, metrics served
# on an ephemeral port, perf record written to BENCH_autopilot.json.
autopilot-smoke:
	$(GO) run ./cmd/autopilotd -windows 3 -drift -drift-at 1 \
		-addr 127.0.0.1:0 -bench-json BENCH_autopilot.json

# The what-if fast path held to its perf record: the Table 2 / Figure 5
# recommender searches run cache-off then cache-on, recommendations must
# be byte-identical, and the speedups land in BENCH_whatif.json.
whatif-smoke:
	$(GO) run ./cmd/whatifbench -o BENCH_whatif.json

# Boot the multi-tenant gateway in-process, drive 500 one-query sessions
# across 3 tenants, and drain. loadgen exits nonzero unless the gateway
# went ready, admitted queries, saw zero transport errors and shut down
# cleanly; throughput, p50/p99, rejection rate and per-tenant goal
# levels land in BENCH_gateway.json.
gateway-smoke:
	$(GO) run ./cmd/loadgen -selfhost -scale 0.0001 -tuning \
		-sessions 500 -queries 1 -workers 24 -o BENCH_gateway.json

# The sharded engine's scaling curve and determinism contract: results
# and recommendations byte-identical at 1 and 4 shards, simulated
# throughput monotone in shard count, dry-run autoscaler audited without
# mutating. Exits nonzero on any violation; the curve lands in
# BENCH_shard.json.
shard-smoke:
	$(GO) run ./cmd/shardbench -smoke -o BENCH_shard.json

verify: build test race vet fmtcheck lint autopilot-smoke whatif-smoke gateway-smoke shard-smoke
