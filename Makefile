# Tier-1 verify plus the concurrency gate. `make verify` is what CI runs.

GO ?= go

.PHONY: build test race bench fuzz verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run is part of verify: the engine's read path is exercised by
# 32 concurrent goroutines against a config-applying writer (see
# internal/engine/race_test.go); full-scale golden tests skip themselves
# under the detector.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

fuzz:
	$(GO) test ./internal/sql/ -fuzz=FuzzParse -fuzztime=30s

verify: build test race
