// Benchmarks regenerating every table and figure of the paper, one
// testing.B target per artifact (plus ablations). They run the same
// experiment code as cmd/autobench at a reduced scale so `go test
// -bench=.` completes quickly; use cmd/autobench for full-scale runs.
//
// Each benchmark reports the wall time of the experiment; the experiment
// text itself (simulated seconds, curves, tables) is what the paper's
// artifacts correspond to.
package main

import (
	"flag"
	"sync"
	"testing"

	"repro/internal/bench"
)

// benchScale trades fidelity for speed in `go test -bench`; cmd/autobench
// defaults to 0.0005.
const benchScale = 0.0002

// benchParallel bounds the per-workload query fan-out (0 = GOMAXPROCS,
// 1 = sequential). `-parallel` collides with the testing package's own
// flag at the go-tool level, so pass it after `-args`:
//
//	go test -bench=. -args -parallel 4
var benchParallel = flag.Int("parallel", 0, "workload query parallelism for benchmarks (0 = GOMAXPROCS)")

var (
	labOnce sync.Once
	lab     *bench.Lab
)

// sharedLab memoizes engines, workloads, recommendations and runs across
// benchmarks, mirroring how the experiments share state in the paper.
func sharedLab() *bench.Lab {
	labOnce.Do(func() {
		lab = bench.NewLab(benchScale, 42)
		lab.WorkloadSize = 30
		lab.Parallelism = *benchParallel
	})
	return lab
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := bench.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	l := sharedLab()
	for i := 0; i < b.N; i++ {
		out, err := exp.Run(l)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(out) == 0 {
			b.Fatalf("%s produced no output", id)
		}
	}
}

func BenchmarkFig1(b *testing.B)  { runExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)  { runExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)  { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { runExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { runExperiment(b, "fig11") }

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

func BenchmarkLowerBounds(b *testing.B) { runExperiment(b, "lowerbounds") }
func BenchmarkInsertions(b *testing.B)  { runExperiment(b, "insertions") }
func BenchmarkFamilies(b *testing.B)    { runExperiment(b, "families") }
func BenchmarkGoals(b *testing.B)       { runExperiment(b, "goals") }

func BenchmarkAblationWhatIf(b *testing.B) { runExperiment(b, "ablation-whatif") }
func BenchmarkAblationBudget(b *testing.B) { runExperiment(b, "ablation-budget") }
func BenchmarkAblationDisk(b *testing.B)   { runExperiment(b, "ablation-disk") }
